package unet

import (
	"fmt"

	"seaice/internal/nn"
	"seaice/internal/raster"
	"seaice/internal/tensor"
)

// Session is a forward-only inference engine over a trained Model. It
// produces the same predictions as Model.Predict while avoiding the
// training path's costs: convolutions run directly on NCHW planes (no
// im2col materialization), bias and ReLU are applied in a fused pass,
// the skip-connection concatenation is virtualized instead of copied,
// and every intermediate activation lives in a buffer owned by the
// session and reused across calls. Micro-batched serving (internal/serve)
// runs one Session per worker.
//
// A Session is NOT safe for concurrent use; the underlying Model's
// weights are only read, so many Sessions may share one Model.
type Session struct {
	m *Model

	// Grow-only activation buffers, reused across Forward calls.
	in      []float64
	encC1   [][]float64 // conv1 output per encoder level
	encC2   [][]float64 // conv2 output per encoder level (skip source)
	pooled  [][]float64 // pooled output per encoder level
	botC1   []float64
	botC2   []float64
	up      [][]float64 // up-convolution output per decoder step
	decC1   [][]float64
	decC2   [][]float64
	logits  []float64
	lastDim []int // shape of the last logits tensor
}

// NewSession builds an inference session for m.
func NewSession(m *Model) *Session {
	d := m.cfg.Depth
	return &Session{
		m:      m,
		encC1:  make([][]float64, d),
		encC2:  make([][]float64, d),
		pooled: make([][]float64, d),
		up:     make([][]float64, d),
		decC1:  make([][]float64, d),
		decC2:  make([][]float64, d),
	}
}

// Model returns the session's underlying model.
func (s *Session) Model() *Model { return s.m }

// grow returns buf resized to n elements, reallocating only when the
// capacity is insufficient. Contents are NOT cleared.
func grow(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// Forward runs the U-Net on x (N, InChannels, H, W) and returns class
// logits (N, Classes, H, W). The returned tensor aliases session-owned
// memory and is only valid until the next Forward/Predict call.
func (s *Session) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if len(x.Shape) != 4 || x.Shape[1] != s.m.cfg.InChannels {
		return nil, fmt.Errorf("unet: session expects (N,%d,H,W), got %v", s.m.cfg.InChannels, x.Shape)
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	min := s.m.cfg.MinInputSize()
	if h%min != 0 || w%min != 0 {
		return nil, fmt.Errorf("unet: session input %dx%d not divisible by %d", w, h, min)
	}
	m := s.m
	d := m.cfg.Depth

	// Contracting path.
	cur := x.Data
	ch, cw := h, w
	for l := 0; l < d; l++ {
		b := m.enc[l]
		c1 := grow(&s.encC1[l], n*b.conv1.OutC*ch*cw)
		conv3x3(b.conv1, cur, b.conv1.InC, nil, 0, n, ch, cw, c1, true)
		c2 := grow(&s.encC2[l], n*b.conv2.OutC*ch*cw)
		conv3x3(b.conv2, c1, b.conv2.InC, nil, 0, n, ch, cw, c2, true)
		p := grow(&s.pooled[l], n*b.conv2.OutC*(ch/2)*(cw/2))
		maxPool2(c2, n*b.conv2.OutC, ch, cw, p)
		cur, ch, cw = p, ch/2, cw/2
	}

	// Bottleneck.
	bb := m.bottleneck
	c1 := grow(&s.botC1, n*bb.conv1.OutC*ch*cw)
	conv3x3(bb.conv1, cur, bb.conv1.InC, nil, 0, n, ch, cw, c1, true)
	c2 := grow(&s.botC2, n*bb.conv2.OutC*ch*cw)
	conv3x3(bb.conv2, c1, bb.conv2.InC, nil, 0, n, ch, cw, c2, true)
	cur = c2

	// Expanding path: up-convolve, virtually concat the skip, convolve.
	for i := 0; i < d; i++ {
		l := d - 1 - i
		u := m.ups[i]
		uo := grow(&s.up[i], n*u.OutC*(2*ch)*(2*cw))
		convT2x2(u, cur, n, ch, cw, uo)
		ch, cw = 2*ch, 2*cw

		db := m.dec[i]
		skipC := u.OutC // encoder skip has the same channel count
		d1 := grow(&s.decC1[i], n*db.conv1.OutC*ch*cw)
		// conv1 input channels: [0, skipC) from the encoder skip,
		// [skipC, 2·skipC) from the up-convolution output — no copy.
		conv3x3(db.conv1, s.encC2[l], skipC, uo, u.OutC, n, ch, cw, d1, true)
		d2 := grow(&s.decC2[i], n*db.conv2.OutC*ch*cw)
		conv3x3(db.conv2, d1, db.conv2.InC, nil, 0, n, ch, cw, d2, true)
		cur = d2
	}

	out := grow(&s.logits, n*m.cfg.Classes*ch*cw)
	conv1x1(m.final, cur, m.final.InC, n, ch, cw, out)
	s.lastDim = []int{n, m.cfg.Classes, ch, cw}
	return tensor.FromData(out, s.lastDim...), nil
}

// Predict returns per-pixel class predictions for x, like Model.Predict.
func (s *Session) Predict(x *tensor.Tensor) ([]uint8, error) {
	logits, err := s.Forward(x)
	if err != nil {
		return nil, err
	}
	return nn.Predict(logits), nil
}

// PredictTiles classifies a batch of equally-sized RGB tiles in one
// forward pass, amortizing per-layer cost across the batch.
func (s *Session) PredictTiles(tiles []*raster.RGB) ([]*raster.Labels, error) {
	if len(tiles) == 0 {
		return nil, fmt.Errorf("unet: empty tile batch")
	}
	w, h := tiles[0].W, tiles[0].H
	plane := h * w
	in := grow(&s.in, len(tiles)*3*plane)
	for ti, t := range tiles {
		if t.W != w || t.H != h {
			return nil, fmt.Errorf("unet: tile %d is %dx%d, batch is %dx%d", ti, t.W, t.H, w, h)
		}
		base := ti * 3 * plane
		for p := 0; p < plane; p++ {
			in[base+p] = float64(t.Pix[3*p]) / 255
			in[base+plane+p] = float64(t.Pix[3*p+1]) / 255
			in[base+2*plane+p] = float64(t.Pix[3*p+2]) / 255
		}
	}
	pred, err := s.Predict(tensor.FromData(in, len(tiles), 3, h, w))
	if err != nil {
		return nil, err
	}
	out := make([]*raster.Labels, len(tiles))
	for ti := range tiles {
		lab := raster.NewLabels(w, h)
		for p := 0; p < plane; p++ {
			lab.Pix[p] = raster.Class(pred[ti*plane+p])
		}
		out[ti] = lab
	}
	return out, nil
}

// conv3x3 computes a same-padded 3×3 convolution with fused bias (and
// optionally ReLU) directly on NCHW planes. The input may be split
// across two backing buffers to virtualize the U-Net skip concatenation:
// channels [0, ca) read from xa, channels [ca, ca+cb) from xb.
// Accumulation order matches the training path's im2col matrix product
// (channel-major, then kernel row, then kernel column, bias last), so
// results are identical to Conv2D.Forward.
func conv3x3(c *nn.Conv2D, xa []float64, ca int, xb []float64, cb int, n, h, w int, dst []float64, relu bool) {
	inC := ca + cb
	plane := h * w
	wd := c.Weight.W.Data
	for img := 0; img < n; img++ {
		for oc := 0; oc < c.OutC; oc++ {
			dp := dst[(img*c.OutC+oc)*plane : (img*c.OutC+oc+1)*plane]
			for i := range dp {
				dp[i] = 0
			}
			wrow := wd[oc*inC*9 : (oc+1)*inC*9]
			for ic := 0; ic < inC; ic++ {
				var xp []float64
				if ic < ca {
					xp = xa[(img*ca+ic)*plane : (img*ca+ic+1)*plane]
				} else {
					xp = xb[(img*cb+ic-ca)*plane : (img*cb+ic-ca+1)*plane]
				}
				acc3x3(dp, xp, wrow[ic*9:ic*9+9], h, w)
			}
			b := c.Bias.W.Data[oc]
			if relu {
				for i, v := range dp {
					v += b
					if v < 0 {
						v = 0
					}
					dp[i] = v
				}
			} else {
				for i := range dp {
					dp[i] += b
				}
			}
		}
	}
}

// acc3x3 accumulates one input plane's 3×3 contribution into dst.
// Taps falling into the zero padding are skipped (they contribute
// exactly zero in the im2col formulation).
func acc3x3(dst, xp, k []float64, h, w int) {
	if w < 3 || h < 1 {
		acc3x3Small(dst, xp, k, h, w)
		return
	}
	w00, w01, w02 := k[0], k[1], k[2]
	w10, w11, w12 := k[3], k[4], k[5]
	w20, w21, w22 := k[6], k[7], k[8]
	for oy := 0; oy < h; oy++ {
		d := dst[oy*w : (oy+1)*w]
		r1 := xp[oy*w : (oy+1)*w]
		var r0, r2 []float64
		if oy > 0 {
			r0 = xp[(oy-1)*w : oy*w]
		}
		if oy < h-1 {
			r2 = xp[(oy+1)*w : (oy+2)*w]
		}
		switch {
		case r0 != nil && r2 != nil:
			// Interior rows: fully unrolled 9-tap kernel.
			acc := d[0]
			acc += w01 * r0[0]
			acc += w02 * r0[1]
			acc += w11 * r1[0]
			acc += w12 * r1[1]
			acc += w21 * r2[0]
			acc += w22 * r2[1]
			d[0] = acc
			for ox := 1; ox < w-1; ox++ {
				acc := d[ox]
				acc += w00 * r0[ox-1]
				acc += w01 * r0[ox]
				acc += w02 * r0[ox+1]
				acc += w10 * r1[ox-1]
				acc += w11 * r1[ox]
				acc += w12 * r1[ox+1]
				acc += w20 * r2[ox-1]
				acc += w21 * r2[ox]
				acc += w22 * r2[ox+1]
				d[ox] = acc
			}
			acc = d[w-1]
			acc += w00 * r0[w-2]
			acc += w01 * r0[w-1]
			acc += w10 * r1[w-2]
			acc += w11 * r1[w-1]
			acc += w20 * r2[w-2]
			acc += w21 * r2[w-1]
			d[w-1] = acc
		case r2 != nil:
			// Top row (no r0).
			acc := d[0]
			acc += w11 * r1[0]
			acc += w12 * r1[1]
			acc += w21 * r2[0]
			acc += w22 * r2[1]
			d[0] = acc
			for ox := 1; ox < w-1; ox++ {
				acc := d[ox]
				acc += w10 * r1[ox-1]
				acc += w11 * r1[ox]
				acc += w12 * r1[ox+1]
				acc += w20 * r2[ox-1]
				acc += w21 * r2[ox]
				acc += w22 * r2[ox+1]
				d[ox] = acc
			}
			acc = d[w-1]
			acc += w10 * r1[w-2]
			acc += w11 * r1[w-1]
			acc += w20 * r2[w-2]
			acc += w21 * r2[w-1]
			d[w-1] = acc
		case r0 != nil:
			// Bottom row (no r2).
			acc := d[0]
			acc += w01 * r0[0]
			acc += w02 * r0[1]
			acc += w11 * r1[0]
			acc += w12 * r1[1]
			d[0] = acc
			for ox := 1; ox < w-1; ox++ {
				acc := d[ox]
				acc += w00 * r0[ox-1]
				acc += w01 * r0[ox]
				acc += w02 * r0[ox+1]
				acc += w10 * r1[ox-1]
				acc += w11 * r1[ox]
				acc += w12 * r1[ox+1]
				d[ox] = acc
			}
			acc = d[w-1]
			acc += w00 * r0[w-2]
			acc += w01 * r0[w-1]
			acc += w10 * r1[w-2]
			acc += w11 * r1[w-1]
			d[w-1] = acc
		default:
			// Single-row plane.
			acc3x3Small(dst[oy*w:(oy+1)*w], r1, k, 1, w)
		}
	}
}

// acc3x3Small is the fully guarded fallback for planes too small for the
// unrolled kernel.
func acc3x3Small(dst, xp, k []float64, h, w int) {
	for oy := 0; oy < h; oy++ {
		for ox := 0; ox < w; ox++ {
			acc := dst[oy*w+ox]
			for ky := 0; ky < 3; ky++ {
				iy := oy + ky - 1
				if iy < 0 || iy >= h {
					continue
				}
				for kx := 0; kx < 3; kx++ {
					ix := ox + kx - 1
					if ix < 0 || ix >= w {
						continue
					}
					acc += k[ky*3+kx] * xp[iy*w+ix]
				}
			}
			dst[oy*w+ox] = acc
		}
	}
}

// conv1x1 computes the final 1×1 convolution with bias.
func conv1x1(c *nn.Conv2D, x []float64, inC, n, h, w int, dst []float64) {
	plane := h * w
	wd := c.Weight.W.Data
	for img := 0; img < n; img++ {
		for oc := 0; oc < c.OutC; oc++ {
			dp := dst[(img*c.OutC+oc)*plane : (img*c.OutC+oc+1)*plane]
			for i := range dp {
				dp[i] = 0
			}
			for ic := 0; ic < inC; ic++ {
				wv := wd[oc*inC+ic]
				xp := x[(img*inC+ic)*plane : (img*inC+ic+1)*plane]
				for i, v := range xp {
					dp[i] += wv * v
				}
			}
			b := c.Bias.W.Data[oc]
			for i := range dp {
				dp[i] += b
			}
		}
	}
}

// maxPool2 applies 2×2 stride-2 max pooling over nc planes of h×w.
func maxPool2(x []float64, nc, h, w int, dst []float64) {
	oh, ow := h/2, w/2
	oi := 0
	for p := 0; p < nc; p++ {
		base := p * h * w
		for oy := 0; oy < oh; oy++ {
			i0 := base + (2*oy)*w
			i1 := base + (2*oy+1)*w
			for ox := 0; ox < ow; ox++ {
				bv := x[i0+2*ox]
				if v := x[i0+2*ox+1]; v > bv {
					bv = v
				}
				if v := x[i1+2*ox]; v > bv {
					bv = v
				}
				if v := x[i1+2*ox+1]; v > bv {
					bv = v
				}
				dst[oi] = bv
				oi++
			}
		}
	}
}

// convT2x2 computes the stride-2 2×2 transposed convolution with bias,
// mirroring ConvTranspose2x2.Forward into a session-owned buffer.
func convT2x2(u *nn.ConvTranspose2x2, x []float64, n, h, w int, dst []float64) {
	plane := 4 * h * w
	for i := range dst[:n*u.OutC*plane] {
		dst[i] = 0
	}
	for img := 0; img < n; img++ {
		for ic := 0; ic < u.InC; ic++ {
			wrow := u.Weight.W.Data[ic*u.OutC*4 : (ic+1)*u.OutC*4]
			xp := x[(img*u.InC+ic)*h*w : (img*u.InC+ic+1)*h*w]
			for oc := 0; oc < u.OutC; oc++ {
				k := wrow[oc*4 : oc*4+4]
				k0, k1, k2, k3 := k[0], k[1], k[2], k[3]
				yp := dst[(img*u.OutC+oc)*plane : (img*u.OutC+oc+1)*plane]
				for iy := 0; iy < h; iy++ {
					row0 := yp[(2*iy)*(2*w):]
					row1 := yp[(2*iy+1)*(2*w):]
					xr := xp[iy*w : (iy+1)*w]
					for ix, v := range xr {
						row0[2*ix] += v * k0
						row0[2*ix+1] += v * k1
						row1[2*ix] += v * k2
						row1[2*ix+1] += v * k3
					}
				}
			}
		}
	}
	for img := 0; img < n; img++ {
		for oc := 0; oc < u.OutC; oc++ {
			b := u.Bias.W.Data[oc]
			yp := dst[(img*u.OutC+oc)*plane : (img*u.OutC+oc+1)*plane]
			for i := range yp {
				yp[i] += b
			}
		}
	}
}
