package nn

import (
	"fmt"
	"math"

	"seaice/internal/tensor"
)

// Criterion is the pluggable training loss: the contract unet.Model
// trains against, implemented by SoftmaxCrossEntropy (the default) and
// FocalCrossEntropy. Loss evaluates the criterion on NCHW logits and
// per-pixel integer labels; Grad returns dL/dlogits for the last Loss
// call, reusing an internal buffer.
type Criterion[S tensor.Scalar] interface {
	Loss(logits *tensor.Tensor[S], labels []uint8) (float64, error)
	Grad() *tensor.Tensor[S]
}

// FocalParams selects the focal loss in precision-agnostic configs
// (train.Config, ddp.Config); NewFocal instantiates it at the model's
// compute precision.
type FocalParams struct {
	// Gamma is the focusing exponent γ ≥ 0; 0 recovers plain
	// cross-entropy (up to Alpha weighting).
	Gamma float64
	// Alpha holds per-class weights; nil weights every class 1. A short
	// slice is an error at Loss time if a higher class occurs.
	Alpha []float64
}

// NewFocal instantiates the focal criterion at precision S.
func NewFocal[S tensor.Scalar](p FocalParams) *FocalCrossEntropy[S] {
	return &FocalCrossEntropy[S]{Gamma: p.Gamma, Alpha: p.Alpha}
}

// FocalCrossEntropy is the focal loss (Lin et al., RetinaNet) over the
// same per-pixel softmax as SoftmaxCrossEntropy:
//
//	FL = −α_t (1−p_t)^γ log p_t
//
// averaged over all pixels of the batch, where p_t is the softmax
// probability of the true class. The (1−p_t)^γ factor down-weights
// pixels the model already classifies confidently, concentrating the
// gradient on hard pixels — the class-imbalance recipe the partial-label
// sea-ice segmentation work trains with (thin ice is rare next to open
// water in most scenes). γ=0 with nil Alpha reproduces plain
// cross-entropy exactly.
//
// Like SoftmaxCrossEntropy, the exponentials, logs, and powers all run
// in float64 regardless of S, and both passes are straight serial loops
// over pixels — bit-deterministic across runs and worker counts. The
// gradient is validated against central finite differences in the
// package gradcheck tests.
type FocalCrossEntropy[S tensor.Scalar] struct {
	// Gamma is the focusing exponent γ ≥ 0.
	Gamma float64
	// Alpha holds per-class weights; nil weights every class 1.
	Alpha []float64

	probs   *tensor.Tensor[S]
	gradBuf *tensor.Tensor[S]
	labels  []uint8
}

// pClamp bounds the true-class probability away from 0 and 1 so log p_t
// and (1−p_t)^(γ−1) stay finite; the clamped gradient limit is correct
// (the focal coefficient vanishes as p_t→1 for γ>0 and equals α at γ=0).
const pClamp = 1e-12

// alphaFor returns the class weight, or an error when Alpha is set but
// too short for the observed class.
func (f *FocalCrossEntropy[S]) alphaFor(lab int) (float64, error) {
	if f.Alpha == nil {
		return 1, nil
	}
	if lab >= len(f.Alpha) {
		return 0, fmt.Errorf("nn: focal alpha has %d classes, label %d observed", len(f.Alpha), lab)
	}
	return f.Alpha[lab], nil
}

// Loss computes the mean focal loss of logits (N,C,H,W) against labels
// (length N·H·W, class per pixel in row-major image order).
func (f *FocalCrossEntropy[S]) Loss(logits *tensor.Tensor[S], labels []uint8) (float64, error) {
	if len(logits.Shape) != 4 {
		return 0, fmt.Errorf("nn: loss expects NCHW logits, got %v", logits.Shape)
	}
	if f.Gamma < 0 {
		return 0, fmt.Errorf("nn: focal gamma %g must be ≥ 0", f.Gamma)
	}
	n, c, h, w := logits.Shape[0], logits.Shape[1], logits.Shape[2], logits.Shape[3]
	if len(labels) != n*h*w {
		return 0, fmt.Errorf("nn: %d labels for %d pixels", len(labels), n*h*w)
	}
	plane := h * w
	f.probs = tensor.Grow(&f.probs, n, c, h, w)
	f.labels = labels

	total := 0.0
	for img := 0; img < n; img++ {
		for p := 0; p < plane; p++ {
			maxv := math.Inf(-1)
			for ch := 0; ch < c; ch++ {
				v := float64(logits.Data[(img*c+ch)*plane+p])
				if v > maxv {
					maxv = v
				}
			}
			sum := 0.0
			for ch := 0; ch < c; ch++ {
				e := math.Exp(float64(logits.Data[(img*c+ch)*plane+p]) - maxv)
				f.probs.Data[(img*c+ch)*plane+p] = S(e)
				sum += e
			}
			lab := int(labels[img*plane+p])
			if lab >= c {
				return 0, fmt.Errorf("nn: label %d out of range for %d classes", lab, c)
			}
			for ch := 0; ch < c; ch++ {
				f.probs.Data[(img*c+ch)*plane+p] = S(float64(f.probs.Data[(img*c+ch)*plane+p]) / sum)
			}
			alpha, err := f.alphaFor(lab)
			if err != nil {
				return 0, err
			}
			pt := clampP(float64(f.probs.Data[(img*c+lab)*plane+p]))
			total += -alpha * math.Pow(1-pt, f.Gamma) * math.Log(pt)
		}
	}
	return total / float64(n*plane), nil
}

// Grad returns dL/dlogits for the last Loss call:
//
//	dL/dz_j = α_t [(1−p_t)^γ − γ p_t (1−p_t)^(γ−1) log p_t] (p_j − δ_tj) / N
//
// the standard focal gradient, which reduces to the fused softmax-CE
// gradient (p − one-hot)/N at γ=0, α=1.
func (f *FocalCrossEntropy[S]) Grad() *tensor.Tensor[S] {
	if f.probs == nil {
		panic("nn: Grad before Loss")
	}
	n, c := f.probs.Shape[0], f.probs.Shape[1]
	plane := f.probs.Shape[2] * f.probs.Shape[3]
	g := tensor.Grow(&f.gradBuf, f.probs.Shape...)
	inv := 1 / float64(n*plane)
	for img := 0; img < n; img++ {
		for p := 0; p < plane; p++ {
			lab := int(f.labels[img*plane+p])
			// Alpha was validated in Loss for every observed label.
			alpha := 1.0
			if f.Alpha != nil {
				alpha = f.Alpha[lab]
			}
			pt := clampP(float64(f.probs.Data[(img*c+lab)*plane+p]))
			u := 1 - pt
			if u < pClamp {
				u = pClamp
			}
			coef := alpha * (math.Pow(u, f.Gamma) - f.Gamma*pt*math.Pow(u, f.Gamma-1)*math.Log(pt)) * inv
			for ch := 0; ch < c; ch++ {
				pj := float64(f.probs.Data[(img*c+ch)*plane+p])
				delta := 0.0
				if ch == lab {
					delta = 1
				}
				g.Data[(img*c+ch)*plane+p] = S(coef * (pj - delta))
			}
		}
	}
	return g
}

// clampP bounds a probability to [pClamp, 1−pClamp].
func clampP(p float64) float64 {
	if p < pClamp {
		return pClamp
	}
	if p > 1-pClamp {
		return 1 - pClamp
	}
	return p
}
