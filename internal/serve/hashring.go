package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// hashVnodes is how many virtual points each node contributes to the
// ring. 64 vnodes keeps the per-node load imbalance within a few percent
// for small clusters without making lookups measurably slower.
const hashVnodes = 64

// HashRing maps tile-content hashes (CacheKeys) onto worker nodes with
// consistent hashing: each node owns the arcs clockwise-preceding its
// virtual points, so every key has exactly one owner and adding or
// removing a node only remaps the keys on its own arcs. The coordinator
// uses it to shard tile classification — and therefore tile caching —
// across nodes without duplication.
type HashRing struct {
	points []ringPoint // sorted by hash
	nodes  int
}

type ringPoint struct {
	hash uint64
	node int
}

// NewHashRing builds the ring over nodes 0..n−1.
func NewHashRing(n int) (*HashRing, error) {
	if n < 1 {
		return nil, fmt.Errorf("serve: hash ring needs ≥1 node, got %d", n)
	}
	h := &HashRing{nodes: n, points: make([]ringPoint, 0, n*hashVnodes)}
	for node := 0; node < n; node++ {
		for v := 0; v < hashVnodes; v++ {
			sum := sha256.Sum256([]byte(fmt.Sprintf("node%d#%d", node, v)))
			h.points = append(h.points, ringPoint{
				hash: binary.BigEndian.Uint64(sum[:8]),
				node: node,
			})
		}
	}
	sort.Slice(h.points, func(i, j int) bool { return h.points[i].hash < h.points[j].hash })
	return h, nil
}

// Nodes reports the ring's node count.
func (h *HashRing) Nodes() int { return h.nodes }

// Owner returns the node owning key: the node of the first ring point at
// or clockwise-after the key's position.
func (h *HashRing) Owner(key CacheKey) int {
	return h.points[h.at(key)].node
}

// OwnerAvoiding returns the first live owner for key, walking clockwise
// past points whose nodes are down. It falls back to the true owner when
// every node is reported down (callers detect that case separately).
func (h *HashRing) OwnerAvoiding(key CacheKey, down func(node int) bool) int {
	start := h.at(key)
	for i := 0; i < len(h.points); i++ {
		node := h.points[(start+i)%len(h.points)].node
		if !down(node) {
			return node
		}
	}
	return h.points[start].node
}

// at returns the index of the first ring point at or after the key's
// hash, wrapping past the top of the ring.
func (h *HashRing) at(key CacheKey) int {
	kh := binary.BigEndian.Uint64(key[:8])
	i := sort.Search(len(h.points), func(i int) bool { return h.points[i].hash >= kh })
	if i == len(h.points) {
		i = 0
	}
	return i
}
