package colorspace

import (
	"testing"
	"testing/quick"

	"seaice/internal/noise"
	"seaice/internal/raster"
)

func TestKnownConversions(t *testing.T) {
	cases := []struct {
		r, g, b uint8
		want    HSV
	}{
		{0, 0, 0, HSV{0, 0, 0}},         // black
		{255, 255, 255, HSV{0, 0, 255}}, // white: S=0
		{255, 0, 0, HSV{0, 255, 255}},   // red
		{0, 255, 0, HSV{60, 255, 255}},  // green (120°/2)
		{0, 0, 255, HSV{120, 255, 255}}, // blue (240°/2)
		{128, 128, 128, HSV{0, 0, 128}}, // gray
	}
	for _, c := range cases {
		got := RGBToHSV(c.r, c.g, c.b)
		if got != c.want {
			t.Errorf("RGBToHSV(%d,%d,%d) = %+v, want %+v", c.r, c.g, c.b, got, c.want)
		}
	}
}

// TestValueChannelExact: V must equal max(R,G,B) exactly — the paper's
// class thresholds live on this channel.
func TestValueChannelExact(t *testing.T) {
	f := func(r, g, b uint8) bool {
		v := RGBToHSV(r, g, b).V
		max := r
		if g > max {
			max = g
		}
		if b > max {
			max = b
		}
		return v == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripWithinQuantization: HSV→RGB→HSV stays within the error of
// 8-bit hue quantization (hue resolution is 2°, value is exact).
func TestRoundTripWithinQuantization(t *testing.T) {
	f := func(r, g, b uint8) bool {
		hsv := RGBToHSV(r, g, b)
		r2, g2, b2 := HSVToRGB(hsv)
		hsv2 := RGBToHSV(r2, g2, b2)
		dv := int(hsv.V) - int(hsv2.V)
		if dv < -2 || dv > 2 {
			return false
		}
		ds := int(hsv.S) - int(hsv2.S)
		return ds >= -12 && ds <= 12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHueRange(t *testing.T) {
	f := func(r, g, b uint8) bool {
		return RGBToHSV(r, g, b).H < 180
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestToHSVPlanesMatchPixelConversion(t *testing.T) {
	rng := noise.NewRNG(5, 1)
	img := raster.NewRGB(9, 7)
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	p := ToHSV(img)
	for i := 0; i < img.W*img.H; i++ {
		want := RGBToHSV(img.Pix[3*i], img.Pix[3*i+1], img.Pix[3*i+2])
		if p.Hue[i] != want.H || p.Sat[i] != want.S || p.Val[i] != want.V {
			t.Fatalf("plane conversion differs at %d", i)
		}
	}
	// ToRGB of the planes must round-trip V exactly.
	back := ToHSV(p.ToRGB())
	for i := range p.Val {
		dv := int(p.Val[i]) - int(back.Val[i])
		if dv < -2 || dv > 2 {
			t.Fatalf("value channel drifted at %d: %d vs %d", i, p.Val[i], back.Val[i])
		}
	}
}

func TestValPlaneMatchesHSV(t *testing.T) {
	rng := noise.NewRNG(6, 1)
	img := raster.NewRGB(8, 8)
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	v := ValPlane(img)
	p := ToHSV(img)
	for i := range v.Pix {
		if v.Pix[i] != p.Val[i] {
			t.Fatalf("ValPlane differs from HSV value at %d", i)
		}
	}
}

// TestInRangeMonotone: growing the bounds can only grow the mask.
func TestInRangeMonotone(t *testing.T) {
	rng := noise.NewRNG(7, 1)
	img := raster.NewRGB(16, 16)
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	p := ToHSV(img)
	narrow := Bounds{Lo: HSV{0, 0, 100}, Hi: HSV{179, 255, 180}}
	wide := Bounds{Lo: HSV{0, 0, 80}, Hi: HSV{179, 255, 220}}
	mn := InRange(p, narrow)
	mw := InRange(p, wide)
	for i := range mn.Pix {
		if mn.Pix[i] != 0 && mw.Pix[i] == 0 {
			t.Fatalf("widening bounds removed pixel %d from the mask", i)
		}
	}
}

func TestBoundsContains(t *testing.T) {
	b := Bounds{Lo: HSV{0, 0, 31}, Hi: HSV{185, 255, 204}}
	if !b.Contains(HSV{90, 100, 100}) {
		t.Fatal("mid pixel should be inside")
	}
	if b.Contains(HSV{90, 100, 30}) || b.Contains(HSV{90, 100, 205}) {
		t.Fatal("out-of-band value accepted")
	}
}
