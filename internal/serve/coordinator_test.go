package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"seaice/internal/core"
	"seaice/internal/raster"
	"seaice/internal/scene"
)

// workerNode spins up one worker server sharing the cluster's model and
// returns it with its host:port address.
func workerNode(t *testing.T, cfg Config) (*Server, *httptest.Server, string) {
	t.Helper()
	srv, ts := testServer(t, cfg)
	return srv, ts, strings.TrimPrefix(ts.URL, "http://")
}

// testCoordinator fronts the given nodes with a coordinator and its own
// HTTP listener.
func testCoordinator(t *testing.T, cfg Config, nodes []string) (*Coordinator, *httptest.Server) {
	t.Helper()
	coord, err := NewCoordinator(CoordConfig{
		TileSize:    cfg.TileSize,
		Nodes:       nodes,
		Build:       cfg.Build,
		HealthEvery: time.Hour, // request-path detection only, unless a test shortens it
		Timeout:     5 * time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		ts.Close()
		coord.Close()
	})
	return coord, ts
}

// testScene renders a deterministic multi-tile scene.
func testSceneImg(t *testing.T, seed uint64, w, h int) *raster.RGB {
	t.Helper()
	sceneCfg := scene.DefaultConfig(seed)
	sceneCfg.W, sceneCfg.H = w, h
	sc, err := scene.Generate(sceneCfg)
	if err != nil {
		t.Fatal(err)
	}
	return sc.Image
}

// TestCoordinatorShardedServe: a 2-node cluster must return the exact
// bytes a single server returns, each tile must be classified and cached
// by exactly one node (no duplicate caching), and a repeat request must
// be answered fully from the nodes' caches.
func TestCoordinatorShardedServe(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 32
	srvA, _, addrA := workerNode(t, cfg)
	srvB, _, addrB := workerNode(t, cfg)
	coord, cts := testCoordinator(t, cfg, []string{addrA, addrB})

	img := testSceneImg(t, 33, 128, 128) // 16 tiles at 32²

	// Golden: the same scene through one standalone server.
	_, single := testServer(t, cfg)
	_, want := postPNG(t, http.DefaultClient, single.URL+"/classify", img)

	resp, got := postPNG(t, http.DefaultClient, cts.URL+"/classify", img)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("sharded label map differs from single-server output")
	}

	// No duplicate caching: across the cluster, each distinct tile hash
	// was computed exactly once — total misses equal distinct hashes.
	distinct := distinctTileKeys(t, cfg, img)
	_, missA := srvA.cache.Counters()
	_, missB := srvB.cache.Counters()
	if int(missA+missB) != distinct {
		t.Fatalf("cluster cache misses %d+%d, want %d distinct tile hashes (duplicate caching?)",
			missA, missB, distinct)
	}
	if missA == 0 || missB == 0 {
		t.Fatalf("tile shares per node: %d/%d — a node received nothing, sharding untested", missA, missB)
	}

	// Repeat request: no new misses anywhere, byte-identical answer.
	resp, again := postPNG(t, http.DefaultClient, cts.URL+"/classify", img)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(again, want) {
		t.Fatal("repeat sharded request diverged")
	}
	_, missA2 := srvA.cache.Counters()
	_, missB2 := srvB.cache.Counters()
	if missA2 != missA || missB2 != missB {
		t.Fatalf("repeat request caused new misses: %d→%d, %d→%d", missA, missA2, missB, missB2)
	}
	if s := coord.Stats(); s.Requests != 2 || s.Rerouted != 0 {
		t.Fatalf("unexpected coordinator stats: %+v", s)
	}
}

// distinctTileKeys computes how many distinct content hashes the scene's
// filtered tiles produce under the workers' default model name.
func distinctTileKeys(t *testing.T, cfg Config, img *raster.RGB) int {
	t.Helper()
	filtered := filteredScene(t, cfg, img)
	tiles, _, err := raster.Split(filtered, cfg.TileSize, cfg.TileSize)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[CacheKey]bool{}
	for _, tl := range tiles {
		seen[TileKey("default", tl.Image)] = true
	}
	return len(seen)
}

// TestCoordinatorRerouteOnNodeLoss kills one of two workers and expects
// the next request to succeed with identical bytes, served entirely by
// the survivor via clockwise rerouting.
func TestCoordinatorRerouteOnNodeLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 32
	_, tsA, addrA := workerNode(t, cfg)
	srvB, _, addrB := workerNode(t, cfg)
	coord, cts := testCoordinator(t, cfg, []string{addrA, addrB})

	img := testSceneImg(t, 34, 128, 128)
	resp, want := postPNG(t, http.DefaultClient, cts.URL+"/classify", img)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline status %d: %s", resp.StatusCode, want)
	}

	tsA.Close() // node 0 dies

	resp, got := postPNG(t, http.DefaultClient, cts.URL+"/classify", img)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-kill status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("rerouted label map differs from pre-kill output")
	}
	s := coord.Stats()
	if len(s.NodesDown) != 1 || s.NodesDown[0] != 0 {
		t.Fatalf("coordinator should have marked node 0 down: %+v", s)
	}
	if s.Rerouted == 0 {
		t.Fatal("no tiles recorded as rerouted")
	}
	// The survivor alone now holds every tile's answer.
	hitsB, missB := srvB.cache.Counters()
	if int(hitsB+missB) == 0 {
		t.Fatal("survivor served nothing")
	}

	// /healthz reflects the degraded-but-serving cluster.
	hresp, err := http.Get(cts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status    string `json:"status"`
		NodesDown []int  `json:"nodes_down"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Status != "ok" || len(health.NodesDown) != 1 {
		t.Fatalf("unexpected coordinator health: %+v", health)
	}
}

// TestCoordinatorAllNodesDown: with every worker dead the coordinator
// answers 503 instead of hanging or spinning.
func TestCoordinatorAllNodesDown(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 32
	_, tsA, addrA := workerNode(t, cfg)
	_, cts := testCoordinator(t, cfg, []string{addrA})
	tsA.Close()

	img := testSceneImg(t, 35, 64, 64)
	resp, body := postPNG(t, http.DefaultClient, cts.URL+"/classify", img)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, body)
	}
}

// TestCoordinator429Propagation: a worker's backpressure rejection must
// reach the client verbatim — status, Retry-After, and JSON queue-depth
// body — not be treated as a node failure.
func TestCoordinator429Propagation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 32
	overload := overloadBody{Error: "inference queue full, retry later", QueueDepth: 9, QueueSize: 16}
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(overload)
	}))
	defer stub.Close()

	_, cts := testCoordinator(t, cfg, []string{strings.TrimPrefix(stub.URL, "http://")})
	img := testSceneImg(t, 36, 64, 64)
	resp, body := postPNG(t, http.DefaultClient, cts.URL+"/classify", img)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q, want 7", got)
	}
	var decoded overloadBody
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("429 body is not JSON: %v (%s)", err, body)
	}
	if decoded != overload {
		t.Fatalf("429 body %+v not propagated verbatim (want %+v)", decoded, overload)
	}
}

// TestServerOverloadedResponse: the worker's own 429 carries Retry-After
// and a JSON body with the live queue depth.
func TestServerOverloadedResponse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 16
	srv, _ := testServer(t, cfg)
	rec := httptest.NewRecorder()
	srv.writeOverloaded(rec)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After header")
	}
	var body overloadBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("429 body is not JSON: %v", err)
	}
	if body.QueueSize != cfg.QueueSize || body.Error == "" {
		t.Fatalf("unexpected 429 body: %+v", body)
	}
}

// TestRawFilteredRoundTrip: format=raw returns one Class byte per pixel
// with dimensions in X-Seaice-Dims, and filtered=1 skips the server-side
// filter — together the worker-node contract the coordinator relies on.
func TestRawFilteredRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 32
	cfg.CacheSize = 0
	_, ts := testServer(t, cfg)

	img := testSceneImg(t, 37, 64, 64)
	filtered := filteredScene(t, cfg, img)

	// PNG path on the raw scene = golden.
	resp, wantPNG := postPNG(t, http.DefaultClient, ts.URL+"/classify", img)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	// Raw path on the pre-filtered scene must describe the same labels.
	resp, raw := postPNG(t, http.DefaultClient, ts.URL+"/classify?filtered=1&format=raw", filtered)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("raw Content-Type %q", ct)
	}
	if dims := resp.Header.Get("X-Seaice-Dims"); dims != "64x64" {
		t.Fatalf("X-Seaice-Dims %q, want 64x64", dims)
	}
	if len(raw) != 64*64 {
		t.Fatalf("raw body %d bytes, want %d", len(raw), 64*64)
	}
	var stats classifyStats
	if err := json.Unmarshal([]byte(resp.Header.Get("X-Seaice-Stats")), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.FilterUsed {
		t.Fatal("filtered=1 request still reports server-side filtering")
	}
	labels := raster.NewLabels(64, 64)
	for i, b := range raw {
		labels.Pix[i] = raster.Class(b)
	}
	var rendered bytes.Buffer
	if err := labels.Render().EncodePNG(&rendered); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rendered.Bytes(), wantPNG) {
		t.Fatal("raw labels disagree with the PNG path")
	}
}

// filteredScene applies the server's filter stage out of band.
func filteredScene(t *testing.T, cfg Config, img *raster.RGB) *raster.RGB {
	t.Helper()
	f := core.FilterScene(img, cfg.Build)
	if f.W != img.W || f.H != img.H {
		t.Fatalf("filter changed dimensions: %dx%d → %dx%d", img.W, img.H, f.W, f.H)
	}
	return f
}

// TestCoordinatorHealthLoopRecovery: the health loop marks a dead node
// down and, once it answers again, brings it back into rotation.
func TestCoordinatorHealthLoopRecovery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 32
	var healthy atomic.Bool
	healthy.Store(true)
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			if healthy.Load() {
				w.WriteHeader(http.StatusOK)
			} else {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			return
		}
		http.NotFound(w, r)
	}))
	defer stub.Close()

	coord, err := NewCoordinator(CoordConfig{
		TileSize:    cfg.TileSize,
		Nodes:       []string{strings.TrimPrefix(stub.URL, "http://")},
		Build:       cfg.Build,
		HealthEvery: 10 * time.Millisecond,
		Timeout:     time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	waitFor := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if coord.isDown(0) == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for node to be %s", what)
	}
	healthy.Store(false)
	waitFor(true, "marked down")
	healthy.Store(true)
	waitFor(false, "marked up again")
}
