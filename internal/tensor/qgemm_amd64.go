//go:build amd64

// AVX2 int8 GEMM backend. The hot loop is gemmRowU8S8AVX2 in
// qgemm_amd64.s: VPMADDUBSW multiplies 32 unsigned activation bytes
// against 32 signed weight bytes and pair-sums into 16 signed words,
// VPMADDWD widens those into 8 dword partial sums — 32 multiply-adds in
// two instructions. The scheme's 7-bit activation domain ([0, 127]) is
// what makes this exact: VPMADDUBSW saturates its word sums at ±32767,
// and 2·127·127 = 32258 never reaches that, so the backend is
// bit-identical to the scalar reference (asserted by TestGemmBackendParity).
//
// The assembly consumes 32 taps at a time; the Go driver handles the
// k%32 tail per column (quantized layers pad their packed weights and
// im2col columns to a multiple of 32, so the tail is normally empty).

package tensor

// gemmRowU8S8AVX2 computes, for one weight row w of k bytes (k a
// multiple of 32, ≥ 32), out[c] = Σ_{i<k} w[i]·x[c·stride+i] for c in
// [0, npx). Implemented in qgemm_amd64.s.
//
//go:noescape
func gemmRowU8S8AVX2(w *int8, x *uint8, k, npx, stride int, out *int32)

// gemmRow4U8S8AVX2 is the 4-row micro-kernel: each activation load feeds
// four madd chains and one VPHADDD tree replaces four horizontal sums.
// Same k constraints as gemmRowU8S8AVX2.
//
//go:noescape
func gemmRow4U8S8AVX2(w *int8, x *uint8, k, npx, stride, wstride int, out *int32)

// cpuid and xgetbv are tiny assembly shims over the identically-named
// instructions (qgemm_amd64.s).
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// hasAVX2 reports whether both the CPU and the OS support AVX2 + YMM
// state; detected once at init.
var hasAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	if xcr0, _ := xgetbv(); xcr0&6 != 6 { // XMM and YMM state OS-enabled
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}

func gemmU8S8AVX2(w []int8, x []uint8, rows, k, npx int, out []int32) {
	if npx == 0 || rows == 0 {
		return
	}
	k32 := k &^ 31
	r := 0
	if k32 > 0 {
		for ; r+4 <= rows; r += 4 {
			gemmRow4U8S8AVX2(&w[r*k], &x[0], k32, npx, k, k, &out[r*npx])
		}
		for ; r < rows; r++ {
			gemmRowU8S8AVX2(&w[r*k], &x[0], k32, npx, k, &out[r*npx])
		}
	} else {
		for i := range out[:rows*npx] {
			out[i] = 0
		}
	}
	if k32 < k { // scalar tail for the k%32 remainder, all rows
		for r := 0; r < rows; r++ {
			wt := w[r*k+k32 : (r+1)*k]
			orow := out[r*npx : (r+1)*npx]
			for c := 0; c < npx; c++ {
				xc := x[c*k+k32 : (c+1)*k]
				acc := orow[c]
				for i, wv := range wt {
					acc += int32(wv) * int32(xc[i])
				}
				orow[c] = acc
			}
		}
	}
}

func init() {
	RegisterInt8(&Int8Ops{
		Name:      "avx2",
		Priority:  100,
		Available: func() bool { return hasAVX2 },
		GemmU8S8:  gemmU8S8AVX2,
	})
}
