// Package catalog is the data-collection substrate of the workflow — the
// offline substitute for Google Earth Engine's Sentinel-2 archive that
// the paper queries by spatial and temporal extent (§III-A: Ross Sea,
// latitude −70°…−78°, longitude −140°…−180°, November 2019).
//
// The catalog holds scene descriptors (footprint, acquisition time,
// orbit-deterministic seed) laid out on an acquisition grid over a
// region. Queries filter by region intersection and time window, exactly
// like a GEE ImageCollection filterBounds/filterDate chain, and each
// descriptor renders its imagery on demand through internal/scene —
// deterministically, so "downloading" a scene twice yields identical
// pixels.
package catalog

import (
	"fmt"
	"sort"
	"time"

	"seaice/internal/noise"
	"seaice/internal/scene"
)

// Region is a geographic bounding box in degrees. Latitudes run south
// negative; longitude bounds may be given in either order.
type Region struct {
	LatMin, LatMax float64
	LonMin, LonMax float64
}

// Normalize orders the bounds.
func (r Region) Normalize() Region {
	if r.LatMin > r.LatMax {
		r.LatMin, r.LatMax = r.LatMax, r.LatMin
	}
	if r.LonMin > r.LonMax {
		r.LonMin, r.LonMax = r.LonMax, r.LonMin
	}
	return r
}

// Intersects reports whether two regions overlap.
func (r Region) Intersects(o Region) bool {
	r, o = r.Normalize(), o.Normalize()
	return r.LatMin <= o.LatMax && o.LatMin <= r.LatMax &&
		r.LonMin <= o.LonMax && o.LonMin <= r.LonMax
}

// RossSea is the paper's study region: latitude −70° to −78°, longitude
// −140° to −180° (§III-A).
var RossSea = Region{LatMin: -78, LatMax: -70, LonMin: -180, LonMax: -140}

// SceneID identifies one acquisition, in the style of S2 product names.
type SceneID string

// Descriptor is one catalogued acquisition.
type Descriptor struct {
	ID        SceneID
	Footprint Region
	Acquired  time.Time
	// Seed renders this scene's pixels deterministically.
	Seed uint64
	// CloudEstimate is the archive's advertised cloudiness in [0,1]
	// (GEE metadata carries CLOUDY_PIXEL_PERCENTAGE); the rendered
	// scene's true fraction is close but not identical, as in real
	// archives.
	CloudEstimate float64
}

// Catalog is a queryable scene archive.
type Catalog struct {
	scenes []Descriptor
	render scene.Config // template for rendering (size, ice regime)
}

// Config sizes a synthetic archive.
type Config struct {
	Seed uint64
	// Region covered by the acquisition grid.
	Region Region
	// GridLat × GridLon footprints tile the region.
	GridLat, GridLon int
	// Revisit is the time between passes over the same footprint
	// (Sentinel-2 revisits every 5 days, §III-A).
	Revisit time.Duration
	// Start and Passes bound the temporal axis.
	Start  time.Time
	Passes int
	// SceneSize is the rendered scene edge in pixels.
	SceneSize int
	// ClearFraction of acquisitions are cloud-free.
	ClearFraction float64
}

// DefaultConfig covers the Ross Sea for November 2019 with a 6×11
// footprint grid and one pass per revisit — 66 footprints, matching the
// paper's 66 large scenes per pass.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:          seed,
		Region:        RossSea,
		GridLat:       6,
		GridLon:       11,
		Revisit:       5 * 24 * time.Hour,
		Start:         time.Date(2019, time.November, 1, 0, 0, 0, 0, time.UTC),
		Passes:        6, // Nov 1 … Nov 26
		SceneSize:     512,
		ClearFraction: 0.35,
	}
}

// New builds the archive.
func New(cfg Config) (*Catalog, error) {
	if cfg.GridLat <= 0 || cfg.GridLon <= 0 || cfg.Passes <= 0 {
		return nil, fmt.Errorf("catalog: invalid grid %dx%d / %d passes", cfg.GridLat, cfg.GridLon, cfg.Passes)
	}
	if cfg.SceneSize <= 0 {
		return nil, fmt.Errorf("catalog: invalid scene size %d", cfg.SceneSize)
	}
	region := cfg.Region.Normalize()
	dLat := (region.LatMax - region.LatMin) / float64(cfg.GridLat)
	dLon := (region.LonMax - region.LonMin) / float64(cfg.GridLon)

	rng := noise.NewRNG(cfg.Seed, 0xca7a)
	c := &Catalog{render: scene.DefaultConfig(0)}
	c.render.W, c.render.H = cfg.SceneSize, cfg.SceneSize

	for pass := 0; pass < cfg.Passes; pass++ {
		when := cfg.Start.Add(time.Duration(pass) * cfg.Revisit)
		for la := 0; la < cfg.GridLat; la++ {
			for lo := 0; lo < cfg.GridLon; lo++ {
				seed := rng.Uint64()
				cloudy := rng.Float64() >= cfg.ClearFraction
				est := 0.0
				if cloudy {
					est = 0.05 + 0.6*rng.Float64()
				}
				foot := Region{
					LatMin: region.LatMin + float64(la)*dLat,
					LatMax: region.LatMin + float64(la+1)*dLat,
					LonMin: region.LonMin + float64(lo)*dLon,
					LonMax: region.LonMin + float64(lo+1)*dLon,
				}
				id := SceneID(fmt.Sprintf("S2_%s_T%02d%02d", when.Format("20060102"), la, lo))
				c.scenes = append(c.scenes, Descriptor{
					ID:            id,
					Footprint:     foot,
					Acquired:      when,
					Seed:          seed,
					CloudEstimate: est,
				})
			}
		}
	}
	return c, nil
}

// Len reports the archive size.
func (c *Catalog) Len() int { return len(c.scenes) }

// SceneSize reports the rendered scene edge in pixels — the dimension
// every Fetch result shares, needed by streaming consumers
// (pipeline.CatalogSource) that must plan tile grids before fetching.
func (c *Catalog) SceneSize() int { return c.render.W }

// Query mirrors a GEE filterBounds + filterDate + cloud-metadata chain.
type Query struct {
	Region Region
	// From/To bound acquisition time (inclusive From, exclusive To);
	// zero values disable the bound.
	From, To time.Time
	// MaxCloud filters on the advertised cloud estimate; negative
	// disables the filter.
	MaxCloud float64
}

// Find returns matching descriptors sorted by acquisition time then ID.
func (c *Catalog) Find(q Query) []Descriptor {
	var out []Descriptor
	for _, d := range c.scenes {
		if !q.Region.Intersects(d.Footprint) {
			continue
		}
		if !q.From.IsZero() && d.Acquired.Before(q.From) {
			continue
		}
		if !q.To.IsZero() && !d.Acquired.Before(q.To) {
			continue
		}
		if q.MaxCloud >= 0 && d.CloudEstimate > q.MaxCloud {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Acquired.Equal(out[j].Acquired) {
			return out[i].Acquired.Before(out[j].Acquired)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Fetch renders a descriptor's imagery — the "download" step. Scenes are
// deterministic in the descriptor's seed.
func (c *Catalog) Fetch(d Descriptor) (*scene.Scene, error) {
	cfg := c.render
	cfg.Seed = d.Seed
	if d.CloudEstimate <= 0 {
		cfg.Clouds = scene.ClearClouds()
	} else {
		cl := scene.DefaultClouds()
		// Bias maps the advertised cloudiness onto field coverage:
		// more advertised cloud ⇒ lower bias ⇒ more veil.
		cl.Bias = 0.75 - 0.45*d.CloudEstimate
		cfg.Clouds = cl
	}
	return scene.Generate(cfg)
}

// FetchAll renders a list of descriptors in order.
func (c *Catalog) FetchAll(ds []Descriptor) ([]*scene.Scene, error) {
	out := make([]*scene.Scene, len(ds))
	for i, d := range ds {
		sc, err := c.Fetch(d)
		if err != nil {
			return nil, fmt.Errorf("catalog: fetch %s: %w", d.ID, err)
		}
		out[i] = sc
	}
	return out, nil
}
