package ring

import (
	"errors"
	"runtime"
	"sync"
	"testing"
)

// TestGroupConcurrentFailHealCollectives hammers a Group with
// simultaneous Fail/Heal churn and in-flight collectives. Run under
// -race in CI, it checks two things: no data race inside Group, and
// every collective outcome is either success or a well-formed
// *RankError — never a panic, a garbage error, or an out-of-range rank.
func TestGroupConcurrentFailHealCollectives(t *testing.T) {
	const (
		p      = 5
		n      = 257
		rounds = 50
	)
	g, err := NewGroup(p)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup

	// Churner: flips membership of ranks 1..p-1 continuously.
	churn.Add(1)
	go func() {
		defer churn.Done()
		r := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			g.Fail(r)
			g.Heal(r)
			r++
			if r == p {
				r = 1
			}
			runtime.Gosched()
		}
	}()

	// Observer: exercises the read paths concurrently with the churn.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if got := g.LiveCount(); got < 1 || got > p {
				t.Errorf("live count %d out of range", got)
				return
			}
			_ = g.Live()
			_ = g.Dead()
			_ = g.IsLive(1)
			runtime.Gosched()
		}
	}()

	// Collective callers: each round runs a full-group reduce and a
	// broadcast against fresh vectors while membership churns.
	var coll sync.WaitGroup
	for w := 0; w < 2; w++ {
		coll.Add(1)
		go func() {
			defer coll.Done()
			for round := 0; round < rounds; round++ {
				vecs := fillVecs[float64](p, n)
				checkGroupErr(t, AllReduceMeanChunkedGroup(g, vecs, 64), p)
				checkGroupErr(t, BroadcastGroup(g, vecs), p)
			}
		}()
	}

	coll.Wait()
	close(stop)
	churn.Wait()
}

func checkGroupErr(t *testing.T, err error, p int) {
	t.Helper()
	if err == nil {
		return
	}
	var re *RankError
	if !errors.As(err, &re) {
		t.Errorf("collective returned non-RankError: %v", err)
		return
	}
	if re.Rank < 0 || re.Rank >= p {
		t.Errorf("RankError names out-of-range rank %d", re.Rank)
	}
}
