package ddp

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"seaice/internal/chaos"
	"seaice/internal/tensor"
	"seaice/internal/train"
)

// TestCorruptNaNStepBitIdentity is the silent-corruption acceptance
// criterion for the numeric guard: a run where injected NaNs poison the
// gradient exchange at scheduled steps finishes with weights
// byte-identical to the never-corrupted run, at worker counts 1, 3, and
// 4, in float64 and float32 mixed precision. The injected faults are
// one-shot, so the guard's rollback-and-retry must clear every one of
// them without ever falling to the skip policy.
func TestCorruptNaNStepBitIdentity(t *testing.T) {
	for _, tc := range []struct {
		workers int
		spec    string
	}{
		{1, "21:nanstep@3:r0"},
		{3, "21:nanstep@3:r1,nanstep@8:r0"},
		{4, "21:nanstep@2,nanstep@7:r3"},
	} {
		samples := syntheticSamples(123, tc.workers*2*4, 8)
		t.Run(fmt.Sprintf("workers=%d", tc.workers), func(t *testing.T) {
			t.Run("f64", func(t *testing.T) {
				corruptNaNIdentity[float64](t, tc.workers, tc.spec, samples)
			})
			t.Run("f32-mixed", func(t *testing.T) {
				corruptNaNIdentity[float32](t, tc.workers, tc.spec, samples)
			})
		})
	}
}

func corruptNaNIdentity[S tensor.Scalar](t *testing.T, workers int, spec string, samples []train.Sample) {
	model := dropoutConfig(4)
	base := chaosTrainCfg(workers, "", t)
	base.MasterWeights = tensor.IsF32[S]()
	base.Guard = train.GuardConfig{Policy: train.GuardSkip}
	clean, cleanRes := runFit[S](t, model, base, samples)

	cfg := chaosTrainCfg(workers, spec, t)
	cfg.MasterWeights = base.MasterWeights
	cfg.Guard = base.Guard
	injector := cfg.Chaos
	faulty, res := runFit[S](t, model, cfg, samples)

	if injector.Remaining() != 0 {
		t.Fatalf("schedule not exhausted: %d faults pending (%v)", injector.Remaining(), injector.Pending())
	}
	if res.Anomalies < 1 {
		t.Fatal("no anomalies recorded — the injected NaNs never reached the guard")
	}
	if res.GuardSkips != 0 {
		t.Fatalf("GuardSkips = %d, want 0: a one-shot NaN must clear on the rollback retry, not fall to the skip policy", res.GuardSkips)
	}
	if res.Steps != cleanRes.Steps {
		t.Fatalf("committed steps %d vs clean %d", res.Steps, cleanRes.Steps)
	}
	if !bytes.Equal(weightsOf(faulty), weightsOf(clean)) {
		t.Error("weights diverge from the never-corrupted run")
	}
}

// TestCorruptGuardSkipPolicy forces a deterministic anomaly (an
// impossibly small norm bound trips on every step, and reproduces on
// the retry) and asserts the skip policy drops every update: the run
// completes, every step is counted as skipped, and the weights are
// byte-identical to the untrained initialization.
func TestCorruptGuardSkipPolicy(t *testing.T) {
	model := dropoutConfig(4)
	cfg := chaosTrainCfg(1, "", t)
	cfg.Guard = train.GuardConfig{Policy: train.GuardSkip, MaxNorm: 1e-12}
	samples := syntheticSamples(321, 8, 8)

	fresh, err := New[float64](model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	initW := weightsOf(fresh)

	tr, res := runFit[float64](t, model, cfg, samples)
	if res.Steps != 12 {
		t.Fatalf("steps = %d, want 12", res.Steps)
	}
	if res.GuardSkips != res.Steps {
		t.Fatalf("GuardSkips = %d, want every one of the %d steps skipped", res.GuardSkips, res.Steps)
	}
	// Each skipped step trips the guard twice: once on first sight, once
	// on the reproducing retry.
	if res.Anomalies != 2*res.Steps {
		t.Fatalf("Anomalies = %d, want %d (two per skipped step)", res.Anomalies, 2*res.Steps)
	}
	if !bytes.Equal(weightsOf(tr), initW) {
		t.Error("skip policy applied an update: weights moved from initialization")
	}
}

// TestCorruptGuardAbortPolicy asserts the abort policy surfaces a typed
// *train.AnomalyError once the anomaly reproduces on the retry.
func TestCorruptGuardAbortPolicy(t *testing.T) {
	model := dropoutConfig(4)
	cfg := chaosTrainCfg(1, "", t)
	cfg.Guard = train.GuardConfig{Policy: train.GuardAbort, MaxNorm: 1e-12}
	samples := syntheticSamples(321, 8, 8)

	tr, err := New[float64](model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Fit(samples)
	var a *train.AnomalyError
	if !errors.As(err, &a) {
		t.Fatalf("Fit returned %v, want *train.AnomalyError", err)
	}
	if a.Step != 0 {
		t.Errorf("anomaly at step %d, want 0 (first step trips the bound)", a.Step)
	}
	if res.Steps != 0 {
		t.Errorf("committed %d steps before aborting, want 0", res.Steps)
	}
}

// corruptSnapshotPair saves two snapshot generations (steps 4 then 8)
// under path with keep=2, so path holds step 8 and path.1 holds step 4.
func corruptSnapshotPair(t *testing.T, tornNewest bool) string {
	t.Helper()
	tr, err := New[float64](dropoutConfig(4), chaosTrainCfg(1, "", t))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap")
	if err := saveSnapshotFile(path, tr.Snapshot(4), 2, false); err != nil {
		t.Fatal(err)
	}
	if err := saveSnapshotFile(path, tr.Snapshot(8), 2, tornNewest); err != nil {
		t.Fatal(err)
	}
	return path
}

// flipByte flips one bit inside the gob body of the snapshot at path.
func flipByte(t *testing.T, path string, off int) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[off] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptSnapshotFallback is the rotation acceptance criterion: a
// bit-flipped or torn newest snapshot is detected at load with the
// typed corruption error, and resume falls back to the previous good
// rotation entry; with every entry corrupt, the load fails loudly.
func TestCorruptSnapshotFallback(t *testing.T) {
	t.Run("bitflip", func(t *testing.T) {
		path := corruptSnapshotPair(t, false)
		flipByte(t, path, len(snapMagic)+8+16) // inside the gob body

		if _, err := LoadSnapshotFile(path); !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("strict load: got %v, want ErrCorruptSnapshot", err)
		}
		snap, entry, err := LoadSnapshotFallback(path, 2)
		if err != nil {
			t.Fatal(err)
		}
		if want := rotationEntry(path, 1); entry != want {
			t.Errorf("fell back to %s, want %s", entry, want)
		}
		if snap.Step != 4 {
			t.Errorf("fallback snapshot at step %d, want 4", snap.Step)
		}
	})

	t.Run("torn-write", func(t *testing.T) {
		path := corruptSnapshotPair(t, true) // newest save truncated mid-body

		if _, err := LoadSnapshotFile(path); !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("strict load: got %v, want ErrCorruptSnapshot", err)
		}
		snap, entry, err := LoadSnapshotFallback(path, 2)
		if err != nil {
			t.Fatal(err)
		}
		if want := rotationEntry(path, 1); entry != want {
			t.Errorf("fell back to %s, want %s", entry, want)
		}
		if snap.Step != 4 {
			t.Errorf("fallback snapshot at step %d, want 4", snap.Step)
		}
	})

	t.Run("all-corrupt", func(t *testing.T) {
		path := corruptSnapshotPair(t, false)
		flipByte(t, path, len(snapMagic)+8+16)
		flipByte(t, rotationEntry(path, 1), len(snapMagic)+8+16)

		if _, _, err := LoadSnapshotFallback(path, 2); !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("got %v, want ErrCorruptSnapshot with no fallback left", err)
		}
	})

	t.Run("clean-prefers-newest", func(t *testing.T) {
		path := corruptSnapshotPair(t, false)
		snap, entry, err := LoadSnapshotFallback(path, 2)
		if err != nil {
			t.Fatal(err)
		}
		if entry != path {
			t.Errorf("loaded %s, want the newest entry %s", entry, path)
		}
		if snap.Step != 8 {
			t.Errorf("snapshot at step %d, want 8", snap.Step)
		}
	})
}

// TestCorruptNetBitIdentity is the tentpole invariant over real TCP: a
// 3-rank cluster with an injected frame bit-flip (caught by the CRC32C
// trailer) and an injected NaN gradient (caught by the numeric guard)
// finishes byte-identical to the never-corrupted single-process run —
// for float64 and float32 mixed precision.
func TestCorruptNetBitIdentity(t *testing.T) {
	t.Run("float64", func(t *testing.T) { testCorruptNetBitIdentity[float64](t, false) })
	t.Run("float32-mixed", func(t *testing.T) { testCorruptNetBitIdentity[float32](t, true) })
}

func testCorruptNetBitIdentity[S tensor.Scalar](t *testing.T, master bool) {
	t.Helper()
	const p = 3
	modelCfg := dropoutConfig(11)
	want := goldenWeights[S](t, modelCfg, p, master)

	h := newNetHarness(t, p)
	results, errs, weights := runNetRanks[S](t, h, modelCfg, func(rank int, inj *chaos.Injector) Config {
		cfg := chaosTrainCfg(p, "", t)
		cfg.MasterWeights = master
		cfg.Chaos = inj
		cfg.Guard = train.GuardConfig{Policy: train.GuardSkip}
		return cfg
	}, "51:bitflip@3:r1,nanstep@6:r0")

	anomalies, recoveries := 0, 0
	for r := 0; r < p; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		if !bytes.Equal(weights[r], want) {
			t.Errorf("rank %d weights diverge from the never-corrupted run", r)
		}
		if results[r].Steps != 12 {
			t.Errorf("rank %d committed %d steps, want 12", r, results[r].Steps)
		}
		if results[r].GuardSkips != 0 {
			t.Errorf("rank %d GuardSkips = %d, want 0 (transient NaN clears on retry)", r, results[r].GuardSkips)
		}
		anomalies += results[r].Anomalies
		recoveries += results[r].Recoveries
	}
	if anomalies == 0 {
		t.Error("no anomalies recorded — the injected NaN never reached the guard")
	}
	if recoveries == 0 {
		t.Error("no recoveries recorded — the flipped frame was not caught by the CRC path")
	}
}
