package labeler

import (
	"bytes"
	"testing"

	"seaice/internal/cloudfilter"
	"seaice/internal/pool"
	"seaice/internal/raster"
	"seaice/internal/scene"
)

// cleanScene renders a cloud-free low-noise scene and runs it through
// the thin-cloud filter — the same preprocessing the dataset builder
// applies before labeling — giving cleanly separable band values.
func cleanScene(t *testing.T, seed uint64, size int) *raster.RGB {
	t.Helper()
	cfg := scene.DefaultConfig(seed)
	cfg.W, cfg.H = size, size
	cfg.Clouds = scene.ClearClouds()
	sc, err := scene.Generate(cfg)
	if err != nil {
		t.Fatalf("scene: %v", err)
	}
	return cloudfilter.FilterDefault(sc.Image).Image
}

// cloudyScene renders a scene with the default atmosphere, the harder
// input for the clustering engines.
func cloudyScene(t *testing.T, seed uint64, size int) *raster.RGB {
	t.Helper()
	cfg := scene.DefaultConfig(seed)
	cfg.W, cfg.H = size, size
	sc, err := scene.Generate(cfg)
	if err != nil {
		t.Fatalf("scene: %v", err)
	}
	return cloudfilter.FilterDefault(sc.Image).Image
}

// engines under test, one per table row.
func testEngines() []Labeler {
	return []Labeler{
		PaperHSV(),
		KMeans{Seed: 99},
		KMeans{K: 5, Seed: 99},
		GMM{Seed: 99},
		GMM{K: 4, Seed: 99, Iters: 6},
	}
}

// TestEnginesByteIdenticalAcrossWorkers is the package's core
// determinism property, mirroring the autolabel parallel tests: every
// engine must produce byte-identical labels at any pool.Shared() worker
// count.
func TestEnginesByteIdenticalAcrossWorkers(t *testing.T) {
	img := cloudyScene(t, 777, 96)
	defer pool.SetSharedWorkers(0)
	for _, eng := range testEngines() {
		pool.SetSharedWorkers(1)
		ref, err := eng.Label(img)
		if err != nil {
			t.Fatalf("%s serial: %v", eng.Name(), err)
		}
		for _, workers := range []int{3, 4} {
			pool.SetSharedWorkers(workers)
			got, err := eng.Label(img)
			if err != nil {
				t.Fatalf("%s at %d workers: %v", eng.Name(), workers, err)
			}
			if !bytes.Equal(classBytes(got), classBytes(ref)) {
				t.Fatalf("%s output differs between 1 and %d workers", eng.Name(), workers)
			}
		}
	}
}

// TestEnginesSeedDeterminism: the same seed reproduces the labels
// byte-for-byte across independent runs.
func TestEnginesSeedDeterminism(t *testing.T) {
	img := cloudyScene(t, 778, 64)
	for _, eng := range testEngines() {
		a, err := eng.Label(img)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		b, err := eng.Label(img)
		if err != nil {
			t.Fatalf("%s rerun: %v", eng.Name(), err)
		}
		if !bytes.Equal(classBytes(a), classBytes(b)) {
			t.Fatalf("%s not deterministic across runs with a fixed seed", eng.Name())
		}
	}
}

// TestKMeansAgreementFloor mirrors the related-work result (snippet 1:
// unsupervised K-means on Sentinel-2 band vectors agrees with reference
// labels at 99.6%): on a clean, separable scene the K-means engine must
// agree with the HSV thresholder on at least 99% of pixels.
func TestKMeansAgreementFloor(t *testing.T) {
	img := cleanScene(t, 4242, 128)
	hsv, err := PaperHSV().Label(img)
	if err != nil {
		t.Fatalf("hsv: %v", err)
	}
	km, err := (KMeans{Seed: 4242}).Label(img)
	if err != nil {
		t.Fatalf("kmeans: %v", err)
	}
	agree := agreement(hsv, km)
	if agree < 0.99 {
		t.Fatalf("kmeans vs hsv agreement %.4f below the 0.99 floor", agree)
	}
	t.Logf("kmeans vs hsv agreement on clean scene: %.4f", agree)
}

// TestGMMAgreement: the GMM engine should also land near the HSV labels
// on a separable scene; the floor is slightly looser since EM fits soft
// boundaries.
func TestGMMAgreement(t *testing.T) {
	img := cleanScene(t, 4242, 128)
	hsv, err := PaperHSV().Label(img)
	if err != nil {
		t.Fatalf("hsv: %v", err)
	}
	gm, err := (GMM{Seed: 4242}).Label(img)
	if err != nil {
		t.Fatalf("gmm: %v", err)
	}
	agree := agreement(hsv, gm)
	if agree < 0.95 {
		t.Fatalf("gmm vs hsv agreement %.4f below the 0.95 floor", agree)
	}
	t.Logf("gmm vs hsv agreement on clean scene: %.4f", agree)
}

// TestParseSpecs: CLI spec round trips.
func TestParseSpecs(t *testing.T) {
	cases := []struct {
		spec string
		name string
	}{
		{"", "hsv"},
		{"hsv", "hsv"},
		{"kmeans", "kmeans:8"},
		{"kmeans:5", "kmeans:5"},
		{"gmm", "gmm:3"},
		{"gmm:2", "gmm:2"},
	}
	for _, c := range cases {
		l, err := Parse(c.spec, 7)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if l.Name() != c.name {
			t.Fatalf("Parse(%q).Name() = %q, want %q", c.spec, l.Name(), c.name)
		}
	}
	for _, bad := range []string{"kmeanz", "kmeans:0", "kmeans:x", "gmm:-1", "hsv:3"} {
		if _, err := Parse(bad, 7); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

// TestFingerprintSeparatesEngines: fingerprints must differ across
// engines and across configurations of the same engine, and nil must
// fall back to the paper's hsv engine.
func TestFingerprintSeparatesEngines(t *testing.T) {
	fps := map[string]string{}
	for _, l := range []Labeler{
		PaperHSV(),
		KMeans{Seed: 1}, KMeans{Seed: 2}, KMeans{K: 5, Seed: 1},
		GMM{Seed: 1}, GMM{Seed: 1, Iters: 30},
	} {
		fp := Fingerprint(l)
		if prev, dup := fps[fp]; dup {
			t.Fatalf("fingerprint collision: %q for %s and %s", fp, prev, l.Name())
		}
		fps[fp] = l.Name()
	}
	if Fingerprint(nil) != Fingerprint(PaperHSV()) {
		t.Fatalf("nil fingerprint %q, want the hsv default %q", Fingerprint(nil), Fingerprint(PaperHSV()))
	}
}

// TestClassOfCenter pins the centroid→class brightness bands.
func TestClassOfCenter(t *testing.T) {
	cases := []struct {
		c    [3]float64
		want raster.Class
	}{
		{[3]float64{0.02, 0.04, 0.08}, raster.ClassWater},    // V≈20
		{[3]float64{0.2, 0.3, 0.5}, raster.ClassThinIce},     // V≈128
		{[3]float64{0.95, 0.95, 0.95}, raster.ClassThickIce}, // V≈242
	}
	for _, c := range cases {
		if got := classOfCenter(c.c); got != c.want {
			t.Fatalf("classOfCenter(%v) = %v, want %v", c.c, got, c.want)
		}
	}
}

// classBytes views a label map's classes as raw bytes for comparison.
func classBytes(l *raster.Labels) []byte {
	out := make([]byte, len(l.Pix))
	for i, c := range l.Pix {
		out[i] = byte(c)
	}
	return out
}

// agreement returns the fraction of matching pixels.
func agreement(a, b *raster.Labels) float64 {
	match := 0
	for i := range a.Pix {
		if a.Pix[i] == b.Pix[i] {
			match++
		}
	}
	return float64(match) / float64(len(a.Pix))
}
