package tensor

import (
	"math"
	"testing"

	"seaice/internal/noise"
	"seaice/internal/pool"
)

// withQuantWorkers runs fn at the worker counts the quantization
// worker-invariance properties are specified for, restoring the default.
func withQuantWorkers(t *testing.T, fn func(workers int)) {
	t.Helper()
	defer pool.SetSharedWorkers(0)
	for _, w := range []int{1, 3, 4} {
		pool.SetSharedWorkers(w)
		fn(w)
	}
}

func TestActParams(t *testing.T) {
	// Plain post-ReLU range: zero-point 0, scale hi/127.
	a := ActParams(0, 6.35)
	if a.Zero != 0 {
		t.Fatalf("post-ReLU zero-point %d, want 0", a.Zero)
	}
	if math.Abs(a.Scale-6.35/QuantMax) > 1e-15 {
		t.Fatalf("scale %g, want %g", a.Scale, 6.35/QuantMax)
	}
	// Signed range gets an interior zero-point, and zero stays exactly
	// representable: Dequantize(Zero) == 0 by construction.
	a = ActParams(-2, 2)
	if a.Zero == 0 || a.Zero == QuantMax {
		t.Fatalf("symmetric range zero-point %d should be interior", a.Zero)
	}
	if got := a.Dequantize(a.Zero); got != 0 {
		t.Fatalf("Dequantize(Zero) = %g, want exact 0", got)
	}
	// A strictly positive lo is widened to include zero.
	a = ActParams(1.5, 3.0)
	if a.Zero != 0 {
		t.Fatalf("positive-lo range zero-point %d, want 0", a.Zero)
	}
	if math.Abs(a.Scale-3.0/QuantMax) > 1e-15 {
		t.Fatalf("positive-lo scale %g, want %g", a.Scale, 3.0/QuantMax)
	}
	// Degenerate ranges still produce a usable positive scale.
	for _, r := range [][2]float64{{0, 0}, {-0, 0}, {5, 2}, {math.NaN(), 3}, {0, math.Inf(1)}} {
		a := ActParams(r[0], r[1])
		if !(a.Scale > 0) || math.IsInf(a.Scale, 0) {
			t.Fatalf("ActParams(%v, %v) scale %g not positive finite", r[0], r[1], a.Scale)
		}
	}
}

// TestQuantRoundTripProperty is the documented-ULP property test: for
// random tensors and calibrated ranges, |dequant(quant(x)) − x| must stay
// within QuantRoundTripBound(scale) for every in-range x, and the
// quantized bytes must be bit-identical at 1/3/4 pool workers.
func TestQuantRoundTripProperty(t *testing.T) {
	rng := noise.NewRNG(1701, 0x9a77)
	ranges := [][2]float64{
		{0, 1}, {0, 11.25}, {-3, 5}, {-8, 0.5}, {0.2, 7}, {-1e-3, 1e-3},
	}
	const n = 9001 // odd: exercises uneven worker splits
	for _, r := range ranges {
		lo, hi := r[0], r[1]
		a := ActParams(lo, hi)
		bound := QuantRoundTripBound(a.Scale)

		src := make([]float64, n)
		for i := range src {
			src[i] = lo + (hi-lo)*rng.Float64()
		}
		src[0], src[1], src[2] = lo, hi, 0 // the range edges and exact zero

		var ref []uint8
		withQuantWorkers(t, func(workers int) {
			q := make([]uint8, n)
			QuantizeActs(q, src, a)
			if ref == nil {
				ref = append([]uint8(nil), q...)
			} else {
				for i := range q {
					if q[i] != ref[i] {
						t.Fatalf("range [%g,%g] workers=%d: quantized byte %d = %d, workers=1 got %d",
							lo, hi, workers, i, q[i], ref[i])
					}
				}
			}
			dq := make([]float64, n)
			DequantizeActs(dq, q, a)
			for i := range dq {
				if err := math.Abs(dq[i] - src[i]); err > bound {
					t.Fatalf("range [%g,%g] workers=%d: x=%g round-trips to %g, error %g > bound %g",
						lo, hi, workers, src[i], dq[i], err, bound)
				}
			}
		})
	}
}

// TestQuantizeWeightsPerChannel checks the per-channel scheme: each row's
// scale is maxAbs/127, the symmetric round-trip error is within half a
// step, and the result is bit-identical at any worker count.
func TestQuantizeWeightsPerChannel(t *testing.T) {
	rng := noise.NewRNG(8, 0x5ca1e)
	const rows, k = 37, 61
	w := make([]float64, rows*k)
	for i := range w {
		w[i] = (rng.Float64() - 0.5) * math.Exp(6*rng.Float64()-3)
	}
	copy(w[3*k:4*k], make([]float64, k)) // one all-zero channel

	var refQ []int8
	var refS []float64
	withQuantWorkers(t, func(workers int) {
		q, scales := QuantizeWeightsPerChannel(w, rows, k)
		if refQ == nil {
			refQ, refS = q, scales
			for r := 0; r < rows; r++ {
				row := w[r*k : (r+1)*k]
				maxAbs := 0.0
				for _, v := range row {
					maxAbs = math.Max(maxAbs, math.Abs(v))
				}
				wantS := 1.0
				if maxAbs > 0 {
					wantS = maxAbs / QuantMax
				}
				if scales[r] != wantS {
					t.Fatalf("row %d scale %g, want %g", r, scales[r], wantS)
				}
				for i, v := range row {
					got := scales[r] * float64(q[r*k+i])
					if math.Abs(got-v) > QuantRoundTripBound(scales[r]) {
						t.Fatalf("row %d tap %d: %g quantizes to %d (%g), error beyond half-step",
							r, i, v, q[r*k+i], got)
					}
				}
			}
			return
		}
		for i := range q {
			if q[i] != refQ[i] {
				t.Fatalf("workers=%d: quantized weight %d differs", workers, i)
			}
		}
		for r := range scales {
			if scales[r] != refS[r] {
				t.Fatalf("workers=%d: scale %d differs", workers, r)
			}
		}
	})
}

// TestRequantMatchesRealMultiplier: the fixed-point encoding must compute
// round(v·M) within one unit over the full accumulator range, for
// multipliers spanning the magnitudes the quantized stack produces.
func TestRequantMatchesRealMultiplier(t *testing.T) {
	rng := noise.NewRNG(99, 0xf1de)
	for trial := 0; trial < 200; trial++ {
		M := math.Exp(-14 * rng.Float64()) // (e⁻¹⁴, 1] ≈ (8.3e-7, 1]
		r := NewRequant(M)
		// The encoding itself must be a faithful rounding of M.
		enc := float64(r.M) * math.Exp2(-float64(r.Shift))
		if rel := math.Abs(enc-M) / M; rel > 1.0/(1<<30) {
			t.Fatalf("M=%g encoded as %g (m=%d shift=%d), rel error %g", M, enc, r.M, r.Shift, rel)
		}
		for i := 0; i < 64; i++ {
			const accMax = Int8AccumBoundTaps * QuantMax * QuantMax
			v := int32(int64(rng.Uint64()%(2*accMax)) - accMax)
			want := math.Round(float64(v) * M)
			got := float64(r.Apply(v))
			if math.Abs(got-want) > 1 {
				t.Fatalf("M=%g v=%d: Apply=%g, round(v·M)=%g", M, v, got, want)
			}
		}
	}
	// Exact cases: powers of two multiply exactly.
	r := NewRequant(0.5)
	for _, v := range []int32{0, 1, 2, 3, -1, -2, -3, 1 << 20} {
		want := int32(math.Floor(float64(v)*0.5 + 0.5)) // round-half-up
		if got := r.Apply(v); got != want {
			t.Fatalf("0.5·%d = %d, want %d", v, got, want)
		}
	}
}

// TestRequantClamp covers the fused clamp: the lower clamp implements
// ReLU at zero-point 0 and re-centers at a nonzero zero-point.
func TestRequantClamp(t *testing.T) {
	r := NewRequant(0.25)
	if got := RequantClamp(-1000, r, 0); got != 0 {
		t.Fatalf("negative accumulator with z=0: %d, want 0 (ReLU)", got)
	}
	if got := RequantClamp(1<<20, r, 0); got != QuantMax {
		t.Fatalf("huge accumulator: %d, want %d", got, QuantMax)
	}
	if got := RequantClamp(8, r, 64); got != 66 {
		t.Fatalf("requant(8)·0.25+64 = %d, want 66", got)
	}
	if got := RequantClamp(-600, r, 64); got != 0 {
		t.Fatalf("deep negative with z=64: %d, want clamp to 0", got)
	}
}
