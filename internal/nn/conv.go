package nn

import (
	"fmt"
	"math"

	"seaice/internal/noise"
	"seaice/internal/tensor"
)

// Conv2D is a same-padded 2-D convolution with bias, the workhorse of the
// U-Net's double-convolution blocks (kernel 3×3, stride 1 in the paper).
type Conv2D struct {
	name             string
	InC, OutC        int
	KH, KW           int
	Stride, Pad      int
	Weight           *Param // (OutC, InC·KH·KW)
	Bias             *Param // (OutC)
	x                *tensor.Tensor
	cols             *tensor.Tensor
	outH, outW, numN int
}

// NewConv2D builds a convolution with He-normal initialization (the
// standard choice before ReLU). Pad defaults to "same" for stride 1.
func NewConv2D(name string, inC, outC, k int, rng *noise.RNG) *Conv2D {
	c := &Conv2D{
		name: name,
		InC:  inC, OutC: outC,
		KH: k, KW: k,
		Stride: 1, Pad: k / 2,
	}
	c.Weight = &Param{
		Name: name + ".weight",
		W:    tensor.New(outC, inC*k*k),
		Grad: tensor.New(outC, inC*k*k),
	}
	std := heStd(inC * k * k)
	c.Weight.W.FillRandn(rng, std)
	c.Bias = &Param{
		Name: name + ".bias",
		W:    tensor.New(outC),
		Grad: tensor.New(outC),
	}
	return c
}

func heStd(fanIn int) float64 {
	if fanIn <= 0 {
		return 0.01
	}
	return math.Sqrt(2 / float64(fanIn))
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// Forward computes y = W·im2col(x) + b.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: %s expects (N,%d,H,W), got %v", c.name, c.InC, x.Shape))
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	c.x = x
	c.cols = tensor.Im2Col(x, c.KH, c.KW, c.Stride, c.Pad)
	c.outH = (h+2*c.Pad-c.KH)/c.Stride + 1
	c.outW = (w+2*c.Pad-c.KW)/c.Stride + 1
	c.numN = n

	out := tensor.MatMul(c.Weight.W, c.cols) // (OutC, N·OH·OW)
	// add bias and reorder (OutC, N, OH·OW) → (N, OutC, OH, OW)
	y := tensor.New(n, c.OutC, c.outH, c.outW)
	plane := c.outH * c.outW
	for oc := 0; oc < c.OutC; oc++ {
		b := c.Bias.W.Data[oc]
		for img := 0; img < n; img++ {
			src := out.Data[oc*n*plane+img*plane : oc*n*plane+(img+1)*plane]
			dst := y.Data[(img*c.OutC+oc)*plane : (img*c.OutC+oc+1)*plane]
			for i, v := range src {
				dst[i] = v + b
			}
		}
	}
	return y
}

// Backward computes input, weight, and bias gradients.
func (c *Conv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n, plane := c.numN, c.outH*c.outW
	// reorder dy (N,OutC,OH,OW) → (OutC, N·OH·OW)
	dout := tensor.New(c.OutC, n*plane)
	for oc := 0; oc < c.OutC; oc++ {
		for img := 0; img < n; img++ {
			src := dy.Data[(img*c.OutC+oc)*plane : (img*c.OutC+oc+1)*plane]
			dst := dout.Data[oc*n*plane+img*plane : oc*n*plane+(img+1)*plane]
			copy(dst, src)
		}
	}

	// bias gradient: sum over positions
	for oc := 0; oc < c.OutC; oc++ {
		sum := 0.0
		for _, v := range dout.Data[oc*n*plane : (oc+1)*n*plane] {
			sum += v
		}
		c.Bias.Grad.Data[oc] += sum
	}

	// weight gradient: dW = dout × colsᵀ
	dw := tensor.MatMulABT(dout, c.cols)
	c.Weight.Grad.AddInPlace(dw)

	// input gradient: dcols = Wᵀ × dout, then fold back
	dcols := tensor.MatMulATB(c.Weight.W, dout)
	dx := tensor.Col2Im(dcols, n, c.InC, c.x.Shape[2], c.x.Shape[3], c.KH, c.KW, c.Stride, c.Pad)
	return dx
}

// ConvTranspose2x2 is the paper's "up-convolution": a 2×2 transposed
// convolution with stride 2 that doubles spatial resolution and halves
// the channel count on the U-Net's expansion path.
type ConvTranspose2x2 struct {
	name      string
	InC, OutC int
	Weight    *Param // (InC, OutC·2·2)
	Bias      *Param // (OutC)
	x         *tensor.Tensor
}

// NewConvTranspose2x2 builds the up-convolution with He initialization.
func NewConvTranspose2x2(name string, inC, outC int, rng *noise.RNG) *ConvTranspose2x2 {
	u := &ConvTranspose2x2{name: name, InC: inC, OutC: outC}
	u.Weight = &Param{
		Name: name + ".weight",
		W:    tensor.New(inC, outC*4),
		Grad: tensor.New(inC, outC*4),
	}
	u.Weight.W.FillRandn(rng, heStd(inC))
	u.Bias = &Param{
		Name: name + ".bias",
		W:    tensor.New(outC),
		Grad: tensor.New(outC),
	}
	return u
}

// Name implements Layer.
func (u *ConvTranspose2x2) Name() string { return u.name }

// Params implements Layer.
func (u *ConvTranspose2x2) Params() []*Param { return []*Param{u.Weight, u.Bias} }

// Forward scatters each input pixel into a 2×2 output block: with stride
// 2 and kernel 2 the blocks do not overlap, so the transposed convolution
// reduces to a per-pixel linear map from InC to OutC·4.
func (u *ConvTranspose2x2) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != u.InC {
		panic(fmt.Sprintf("nn: %s expects (N,%d,H,W), got %v", u.name, u.InC, x.Shape))
	}
	u.x = x
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	y := tensor.New(n, u.OutC, 2*h, 2*w)
	for img := 0; img < n; img++ {
		for ic := 0; ic < u.InC; ic++ {
			wrow := u.Weight.W.Data[ic*u.OutC*4 : (ic+1)*u.OutC*4]
			xp := x.Data[(img*u.InC+ic)*h*w : (img*u.InC+ic+1)*h*w]
			for oc := 0; oc < u.OutC; oc++ {
				k := wrow[oc*4 : oc*4+4]
				yp := y.Data[(img*u.OutC+oc)*4*h*w : (img*u.OutC+oc+1)*4*h*w]
				for iy := 0; iy < h; iy++ {
					row0 := yp[(2*iy)*(2*w):]
					row1 := yp[(2*iy+1)*(2*w):]
					xr := xp[iy*w : (iy+1)*w]
					for ix, v := range xr {
						row0[2*ix] += v * k[0]
						row0[2*ix+1] += v * k[1]
						row1[2*ix] += v * k[2]
						row1[2*ix+1] += v * k[3]
					}
				}
			}
		}
	}
	// bias
	plane := 4 * h * w
	for img := 0; img < n; img++ {
		for oc := 0; oc < u.OutC; oc++ {
			b := u.Bias.W.Data[oc]
			yp := y.Data[(img*u.OutC+oc)*plane : (img*u.OutC+oc+1)*plane]
			for i := range yp {
				yp[i] += b
			}
		}
	}
	return y
}

// Backward gathers gradients from each 2×2 block.
func (u *ConvTranspose2x2) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n, h, w := u.x.Shape[0], u.x.Shape[2], u.x.Shape[3]
	dx := tensor.New(n, u.InC, h, w)
	plane := 4 * h * w

	for img := 0; img < n; img++ {
		for oc := 0; oc < u.OutC; oc++ {
			dyp := dy.Data[(img*u.OutC+oc)*plane : (img*u.OutC+oc+1)*plane]
			sum := 0.0
			for _, v := range dyp {
				sum += v
			}
			u.Bias.Grad.Data[oc] += sum
		}
		for ic := 0; ic < u.InC; ic++ {
			xp := u.x.Data[(img*u.InC+ic)*h*w : (img*u.InC+ic+1)*h*w]
			dxp := dx.Data[(img*u.InC+ic)*h*w : (img*u.InC+ic+1)*h*w]
			wrow := u.Weight.W.Data[ic*u.OutC*4 : (ic+1)*u.OutC*4]
			grow := u.Weight.Grad.Data[ic*u.OutC*4 : (ic+1)*u.OutC*4]
			for oc := 0; oc < u.OutC; oc++ {
				k := wrow[oc*4 : oc*4+4]
				gk := grow[oc*4 : oc*4+4]
				dyp := dy.Data[(img*u.OutC+oc)*plane : (img*u.OutC+oc+1)*plane]
				for iy := 0; iy < h; iy++ {
					row0 := dyp[(2*iy)*(2*w):]
					row1 := dyp[(2*iy+1)*(2*w):]
					xr := xp[iy*w : (iy+1)*w]
					dxr := dxp[iy*w : (iy+1)*w]
					for ix := range xr {
						g0, g1, g2, g3 := row0[2*ix], row0[2*ix+1], row1[2*ix], row1[2*ix+1]
						dxr[ix] += g0*k[0] + g1*k[1] + g2*k[2] + g3*k[3]
						v := xr[ix]
						gk[0] += v * g0
						gk[1] += v * g1
						gk[2] += v * g2
						gk[3] += v * g3
					}
				}
			}
		}
	}
	return dx
}
