package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame hammers the frame decoder with truncated, oversized, and
// garbage inputs (mirroring FuzzLoadCheckpoint): it must reject bad
// frames with an error — never panic, never allocate beyond MaxFrame —
// and any frame it accepts must round-trip through WriteFrame.
func FuzzReadFrame(f *testing.F) {
	valid := func(tag byte, payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, tag, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(valid(tagHello, encodeHello(0, 3, "cluster")))
	f.Add(valid(tagData, []byte{0, 0, 0, 1, 0, 0, 0, 2, 42}))
	f.Add(valid(tagCommit, encodeStep(7)))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	oversize := make([]byte, 4)
	binary.BigEndian.PutUint32(oversize, MaxFrame+1)
	f.Add(append(oversize, 0x01))
	f.Add([]byte{0, 0, 0, 9, 0x04, 1, 2}) // length promises more than present
	// A flipped payload bit and a truncated CRC trailer: both must be
	// rejected by the integrity check, never surfaced as data.
	flipped := valid(tagData, []byte{0, 0, 0, 1, 0, 0, 0, 2, 42})
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	whole := valid(tagCommit, encodeStep(7))
	f.Add(whole[:len(whole)-2])

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if 1+len(fr.Payload) > MaxFrame {
			t.Fatalf("decoder accepted frame of %d bytes", 1+len(fr.Payload))
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr.Tag, fr.Payload); err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		rt, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if rt.Tag != fr.Tag || !bytes.Equal(rt.Payload, fr.Payload) {
			t.Fatal("frame round-trip mismatch")
		}
		// Hello payloads additionally exercise the handshake decoder.
		if fr.Tag == tagHello {
			_, _ = decodeHello(fr.Payload)
		}
	})
}
