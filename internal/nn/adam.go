package nn

import (
	"math"

	"seaice/internal/pool"
	"seaice/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba), the optimizer the
// paper trains its U-Net with. One instance owns the moment estimates for
// a fixed parameter set.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t int
	m []*tensor.Tensor
	v []*tensor.Tensor
}

// NewAdam returns an optimizer with the conventional defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one update to the parameters using their accumulated
// gradients, then the caller typically zeroes the grads. Moment tensors
// are allocated lazily on first use and tracked by position, so the same
// parameter slice (same order) must be passed every step.
func (a *Adam) Step(params []*Param) {
	if a.m == nil {
		a.m = make([]*tensor.Tensor, len(params))
		a.v = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			a.m[i] = tensor.New(p.W.Shape...)
			a.v[i] = tensor.New(p.W.Shape...)
		}
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))

	// Parameters are independent, so the update fans out over the shared
	// pool; the per-element math is unchanged, keeping updates
	// bit-identical to a serial sweep at any worker count.
	pool.Shared().MustMapRanges(len(params), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := params[i]
			m, v := a.m[i], a.v[i]
			for j, g := range p.Grad.Data {
				m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*g
				v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*g*g
				mh := m.Data[j] / bc1
				vh := v.Data[j] / bc2
				p.W.Data[j] -= a.LR * mh / (math.Sqrt(vh) + a.Epsilon)
			}
		}
	})
}

// Steps reports how many updates have been applied.
func (a *Adam) Steps() int { return a.t }
