package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"seaice/internal/chaos"
	"seaice/internal/ring"
)

// Config assembles one rank of a network ring.
type Config struct {
	// Rank is this process's position in [0, len(Peers)).
	Rank int
	// Peers lists every rank's listen address, indexed by rank; rank r
	// accepts from rank r-1 and dials rank r+1 (mod world), the single
	// link direction the ring collectives need.
	Peers []string
	// ClusterID guards against cross-talk between unrelated runs sharing
	// ports; both sides of every link must present the same ID.
	ClusterID string
	// Timeout bounds every blocking operation (dial budget, accept,
	// frame read/write); <= 0 selects DefaultTimeout. A silent peer is
	// declared failed after one Timeout.
	Timeout time.Duration
	// Listener, when non-nil, is a pre-bound listener to accept on
	// (tests bind :0 and collect the real addresses); otherwise the ring
	// listens on Peers[Rank].
	Listener net.Listener
	// Chaos delivers injected network faults (partition, reconnect at
	// step boundaries; dropped frames, bit flips, and slow links at
	// data-frame sends); nil disables injection.
	Chaos *chaos.Injector
	// Logf, when non-nil, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

// Ring is one rank's endpoint of the network ring: a listener, a link to
// the next rank, a link from the previous rank, and the per-step frame
// bookkeeping. The generic collectives (AllReduceMean, Broadcast) and
// the Collective adapter drive it; a Ring is not safe for concurrent
// collective calls (the lockstep contract already forbids them).
type Ring struct {
	cfg     Config
	rank    int
	world   int
	timeout time.Duration
	ln      net.Listener

	mu   sync.Mutex
	next *Conn // link to rank+1 (we dial)
	prev *Conn // link from rank-1 (we accept)

	step    int
	sendSeq uint32
	recvSeq uint32
}

// NewRing validates the configuration and binds the listener; call
// Establish to connect the links. World size 1 needs no networking and
// every operation degenerates to the identity.
func NewRing(cfg Config) (*Ring, error) {
	world := len(cfg.Peers)
	if world == 0 {
		return nil, fmt.Errorf("transport: no peers")
	}
	if cfg.Rank < 0 || cfg.Rank >= world {
		return nil, fmt.Errorf("transport: rank %d of world %d", cfg.Rank, world)
	}
	r := &Ring{cfg: cfg, rank: cfg.Rank, world: world, timeout: cfg.Timeout, ln: cfg.Listener}
	if r.timeout <= 0 {
		r.timeout = DefaultTimeout
	}
	if world > 1 && r.ln == nil {
		ln, err := net.Listen("tcp", cfg.Peers[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Peers[cfg.Rank], err)
		}
		r.ln = ln
	}
	return r, nil
}

// Rank returns this endpoint's rank.
func (r *Ring) Rank() int { return r.rank }

// World returns the ring size.
func (r *Ring) World() int { return r.world }

func (r *Ring) nextRank() int { return (r.rank + 1) % r.world }
func (r *Ring) prevRank() int { return (r.rank - 1 + r.world) % r.world }

func (r *Ring) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// dropConns severs both links; in-flight and subsequent operations fail
// fast with *ring.RankError until Establish rebuilds them.
func (r *Ring) dropConns(why string) {
	r.mu.Lock()
	next, prev := r.next, r.prev
	r.next, r.prev = nil, nil
	r.mu.Unlock()
	if next != nil {
		next.Close()
	}
	if prev != nil {
		prev.Close()
	}
	if next != nil || prev != nil {
		r.logf("rank %d: links dropped (%s)", r.rank, why)
	}
}

// conns snapshots the current links.
func (r *Ring) conns() (next, prev *Conn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next, r.prev
}

var errNoLink = errors.New("transport: link down")

// nextErr wraps a send-side failure as the loss of the next rank.
func (r *Ring) nextErr(err error) error {
	return &ring.RankError{Rank: r.nextRank(), Err: err}
}

// prevErr wraps a receive-side failure as the loss of the previous rank.
func (r *Ring) prevErr(err error) error {
	return &ring.RankError{Rank: r.prevRank(), Err: err}
}

// Establish connects (or reconnects) the ring links — the rendezvous.
// Concurrently, the rank dials its next neighbor (with retry/backoff:
// peers start and recover in arbitrary order) and accepts from its
// previous neighbor, validating both hellos (magic, cluster ID, world
// size, expected peer rank); stale connections from a torn-down
// generation are discarded. The ranks then agree on the step to resume
// from by circulating a running minimum p−1 hops: the return value is
// the smallest step any rank advertised, and a rank that had committed
// past it must roll back before retrying.
//
// The whole rendezvous runs under a total deadline of timeout×(world+3).
// Each individual frame op is already deadline-guarded, but a half-open
// peer — one that keeps connecting, or drips a frame just inside every
// per-op timeout — could otherwise string the handshake along
// indefinitely; the watchdog severs the links and expires the listener
// so Establish fails fast instead.
func (r *Ring) Establish(step int) (int, error) {
	if r.world == 1 {
		return step, nil
	}
	r.dropConns("establish")

	budget := r.timeout * time.Duration(r.world+3)
	var expired atomic.Bool
	watchdog := time.AfterFunc(budget, func() {
		expired.Store(true)
		r.dropConns("rendezvous deadline")
		if d, ok := r.ln.(interface{ SetDeadline(time.Time) error }); ok {
			d.SetDeadline(time.Now())
		}
	})
	defer watchdog.Stop()
	rendezvousErr := func(err error) (int, error) {
		if expired.Load() {
			return 0, fmt.Errorf("transport: rank %d: rendezvous exceeded total deadline %v: %w",
				r.rank, budget, err)
		}
		return 0, err
	}

	type dialRes struct {
		c   *Conn
		err error
	}
	dialCh := make(chan dialRes, 1)
	go func() {
		nc, err := DialRetry(r.cfg.Peers[r.nextRank()], r.timeout)
		if err != nil {
			dialCh <- dialRes{err: err}
			return
		}
		c := newConn(nc, r.timeout)
		if err := c.WriteFrame(tagHello, encodeHello(r.rank, r.world, r.cfg.ClusterID)); err != nil {
			c.Close()
			dialCh <- dialRes{err: err}
			return
		}
		h, err := r.readHello(c)
		if err != nil {
			c.Close()
			dialCh <- dialRes{err: err}
			return
		}
		if h.Rank != r.nextRank() {
			c.Close()
			dialCh <- dialRes{err: fmt.Errorf("transport: dialed %s expecting rank %d, got %d",
				r.cfg.Peers[r.nextRank()], r.nextRank(), h.Rank)}
			return
		}
		dialCh <- dialRes{c: c}
	}()

	prev, acceptErr := r.acceptPrev()
	dial := <-dialCh
	if acceptErr != nil || dial.err != nil {
		if prev != nil {
			prev.Close()
		}
		if dial.c != nil {
			dial.c.Close()
		}
		err := acceptErr
		if err == nil {
			err = dial.err
		}
		return rendezvousErr(err)
	}
	if expired.Load() {
		// The watchdog fired while the links were mid-handshake (not yet
		// registered for dropConns): don't resurrect a rendezvous that
		// already blew its budget.
		prev.Close()
		dial.c.Close()
		return rendezvousErr(errNoLink)
	}

	r.mu.Lock()
	r.next, r.prev = dial.c, prev
	r.mu.Unlock()
	r.sendSeq, r.recvSeq = 0, 0

	// Step agreement: circulate the running minimum around the ring. A
	// committed rank can be at most one step ahead of an aborted one
	// (the commit barrier guarantees it), and after p−1 hops every rank
	// holds the global minimum — the step all ranks retry from.
	agreed := step
	for s := 0; s < r.world-1; s++ {
		if err := r.sendCtl(tagSync, agreed); err != nil {
			return rendezvousErr(err)
		}
		theirs, err := r.recvCtl(tagSync)
		if err != nil {
			return rendezvousErr(err)
		}
		if theirs < agreed {
			agreed = theirs
		}
	}
	r.logf("rank %d: ring established, agreed step %d", r.rank, agreed)
	return agreed, nil
}

// readHello reads and validates the peer's handshake frame.
func (r *Ring) readHello(c *Conn) (hello, error) {
	f, err := c.ReadFrame()
	if err != nil {
		return hello{}, err
	}
	if f.Tag != tagHello {
		return hello{}, fmt.Errorf("transport: expected hello, got tag 0x%02x", f.Tag)
	}
	h, err := decodeHello(f.Payload)
	if err != nil {
		return hello{}, err
	}
	if h.Cluster != r.cfg.ClusterID {
		return hello{}, fmt.Errorf("transport: cluster %q, peer claims %q", r.cfg.ClusterID, h.Cluster)
	}
	if h.World != r.world {
		return hello{}, fmt.Errorf("transport: world %d, peer claims %d", r.world, h.World)
	}
	return h, nil
}

// acceptPrev accepts connections until one presents a valid hello from
// the previous rank; dead or foreign connections (stale generations,
// port scanners) are discarded. Bounded by the ring timeout.
func (r *Ring) acceptPrev() (*Conn, error) {
	deadline := time.Now().Add(r.timeout)
	type deadliner interface{ SetDeadline(time.Time) error }
	for {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: rank %d: no connection from rank %d within %v",
				r.rank, r.prevRank(), r.timeout)
		}
		if d, ok := r.ln.(deadliner); ok {
			d.SetDeadline(deadline)
		}
		nc, err := r.ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("transport: rank %d: accept: %w", r.rank, err)
		}
		c := newConn(nc, r.timeout)
		h, err := r.readHello(c)
		if err != nil || h.Rank != r.prevRank() {
			c.Close()
			continue
		}
		if err := c.WriteFrame(tagHello, encodeHello(r.rank, r.world, r.cfg.ClusterID)); err != nil {
			c.Close()
			continue
		}
		return c, nil
	}
}

// StepStart marks a global-step boundary: frame sequence numbers reset,
// and boundary-scheduled network faults (partition, reconnect) fire by
// severing the links, so the step's first collective fails fast and the
// caller runs the standard abort→Reestablish→retry recovery.
func (r *Ring) StepStart(step int) {
	r.step = step
	r.sendSeq, r.recvSeq = 0, 0
	if in := r.cfg.Chaos; in != nil && r.world > 1 {
		if in.Partition(r.rank, step) {
			r.dropConns(fmt.Sprintf("injected partition @%d", step))
		}
		if in.Reconnect(r.rank, step) {
			r.dropConns(fmt.Sprintf("injected reconnect @%d", step))
		}
	}
}

// sendData ships one collective payload to the next rank, stamped with
// the current step and send sequence. Injected data-plane faults fire
// here: a slow link sleeps (absorbed — wall clock only), a dropped frame
// advances the sequence without touching the wire, so the receiver times
// out exactly as if the network ate the packet.
func (r *Ring) sendData(payload []byte) error {
	if in := r.cfg.Chaos; in != nil {
		if d := in.SlowLink(r.rank, r.step); d > 0 {
			r.logf("rank %d: injected slow link @%d (%v)", r.rank, r.step, d)
			time.Sleep(d)
		}
		if in.DropFrame(r.rank, r.step) {
			r.logf("rank %d: injected frame drop @%d (seq %d)", r.rank, r.step, r.sendSeq)
			r.sendSeq++
			return nil
		}
	}
	next, _ := r.conns()
	if next == nil {
		return r.nextErr(errNoLink)
	}
	buf := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(r.step))
	binary.BigEndian.PutUint32(buf[4:8], r.sendSeq)
	copy(buf[8:], payload)
	if in := r.cfg.Chaos; in != nil && in.Bitflip(r.rank, r.step) {
		// Encode the frame (CRC included), then flip one deterministic
		// payload bit — silent wire corruption the receiver's CRC check
		// must turn into a loud *ring.RankError.
		raw := encodeFrame(tagData, buf)
		raw[5+len(buf)/2] ^= 1 << uint(r.step%8)
		r.logf("rank %d: injected bitflip @%d (seq %d)", r.rank, r.step, r.sendSeq)
		if err := next.writeRaw(raw); err != nil {
			return r.nextErr(err)
		}
		r.sendSeq++
		return nil
	}
	if err := next.WriteFrame(tagData, buf); err != nil {
		return r.nextErr(err)
	}
	r.sendSeq++
	return nil
}

// recvData receives the next collective payload from the previous rank,
// validating tag, step, and sequence; any mismatch or I/O failure is the
// loss of that peer.
func (r *Ring) recvData() ([]byte, error) {
	_, prev := r.conns()
	if prev == nil {
		return nil, r.prevErr(errNoLink)
	}
	f, err := prev.ReadFrame()
	if err != nil {
		return nil, r.prevErr(err)
	}
	if f.Tag != tagData {
		return nil, r.prevErr(fmt.Errorf("transport: expected data, got tag 0x%02x", f.Tag))
	}
	if len(f.Payload) < 8 {
		return nil, r.prevErr(fmt.Errorf("transport: data frame of %d bytes", len(f.Payload)))
	}
	step := int(binary.BigEndian.Uint32(f.Payload[:4]))
	seq := binary.BigEndian.Uint32(f.Payload[4:8])
	if step != r.step || seq != r.recvSeq {
		return nil, r.prevErr(fmt.Errorf("transport: data frame step %d seq %d, expected step %d seq %d",
			step, seq, r.step, r.recvSeq))
	}
	r.recvSeq++
	return f.Payload[8:], nil
}

// sendCtl ships one control frame (sync/commit) to the next rank.
func (r *Ring) sendCtl(tag byte, step int) error {
	next, _ := r.conns()
	if next == nil {
		return r.nextErr(errNoLink)
	}
	if err := next.WriteFrame(tag, encodeStep(step)); err != nil {
		return r.nextErr(err)
	}
	return nil
}

// recvCtl receives one control frame of the expected tag.
func (r *Ring) recvCtl(tag byte) (int, error) {
	_, prev := r.conns()
	if prev == nil {
		return 0, r.prevErr(errNoLink)
	}
	f, err := prev.ReadFrame()
	if err != nil {
		return 0, r.prevErr(err)
	}
	if f.Tag != tag {
		return 0, r.prevErr(fmt.Errorf("transport: expected tag 0x%02x, got 0x%02x", tag, f.Tag))
	}
	step, err := decodeStep(f.Payload)
	if err != nil {
		return 0, r.prevErr(err)
	}
	return step, nil
}

// hop runs one ring exchange — send to next concurrently with receive
// from prev (socket buffers are smaller than large chunks, so a
// sequential send-then-receive would deadlock exactly like unbuffered
// channels would in the in-process ring). Both halves must succeed.
func (r *Ring) hop(payload []byte) ([]byte, error) {
	sendErr := make(chan error, 1)
	go func() { sendErr <- r.sendData(payload) }()
	in, rerr := r.recvData()
	werr := <-sendErr
	if werr != nil {
		return nil, werr
	}
	if rerr != nil {
		return nil, rerr
	}
	return in, nil
}

// Commit is the end-of-step agreement barrier: p−1 rounds, each sending
// one commit token to the next rank and receiving one from the previous,
// validating the step. Completing the barrier proves every rank entered
// it (my round-s token can only arrive after my predecessor finished
// round s−1, inductively covering the whole ring), i.e. every rank
// finished this step's collectives — so a committed update is never
// rolled back by a peer that silently missed the step.
func (r *Ring) Commit(step int) error {
	if r.world == 1 {
		return nil
	}
	for s := 0; s < r.world-1; s++ {
		sendErr := make(chan error, 1)
		go func() { sendErr <- r.sendCtl(tagCommit, step) }()
		theirs, rerr := r.recvCtl(tagCommit)
		werr := <-sendErr
		if werr != nil {
			return werr
		}
		if rerr != nil {
			return rerr
		}
		if theirs != step {
			return r.prevErr(fmt.Errorf("transport: commit for step %d, peer at %d", step, theirs))
		}
	}
	return nil
}

// Close severs the links and the listener.
func (r *Ring) Close() error {
	r.dropConns("close")
	if r.ln != nil {
		return r.ln.Close()
	}
	return nil
}
