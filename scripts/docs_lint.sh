#!/usr/bin/env sh
# docs_lint.sh — documentation lint, run by CI.
#
# Fails when:
#   1. any internal/ package lacks a package comment (go vet does not
#      enforce this; `go doc` prints the comment on line 3 when present);
#   2. ARCHITECTURE.md does not mention an internal/ package (the layer
#      map must stay complete as packages are added).
set -eu

cd "$(dirname "$0")/.."
fail=0

for d in internal/*/; do
    pkg=$(basename "$d")
    doc=$(go doc "./internal/$pkg" 2>/dev/null | sed -n '3p')
    if [ -z "$doc" ]; then
        echo "docs-lint: internal/$pkg lacks a package comment" >&2
        fail=1
    fi
    if ! grep -q "internal/$pkg\b" ARCHITECTURE.md; then
        echo "docs-lint: ARCHITECTURE.md does not cover internal/$pkg" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "docs-lint: FAILED" >&2
    exit 1
fi
echo "docs-lint: ok ($(ls -d internal/*/ | wc -l | tr -d ' ') packages covered)"
