// Command seaice-label runs the data-preparation half of the workflow:
// it generates (or loads) Sentinel-2-like scenes, applies the thin-cloud
// and shadow filter, auto-labels them with the selected labeling engine
// (HSV thresholds, mini-batch K-means, or a Gaussian mixture), writes
// the imagery and label maps as PNGs, and reports the auto-label SSIM
// against the manual (ground-truth) labels — §III-A/B of the paper.
//
// Usage:
//
//	seaice-label -scenes 4 -size 512 -seed 7 -out ./out
//	seaice-label -labeler kmeans -scenes 4 -out ./out
//	seaice-label -labeler hsv,kmeans,gmm -compare -out ./out
//	seaice-label -demo -out ./out    # one annotated sample scene
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"seaice/internal/autolabel"
	"seaice/internal/cloudfilter"
	"seaice/internal/labeler"
	"seaice/internal/metrics"
	"seaice/internal/pool"
	"seaice/internal/raster"
	"seaice/internal/scene"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seaice-label: ")

	var (
		nScenes = flag.Int("scenes", 4, "number of scenes to generate")
		size    = flag.Int("size", 512, "scene width and height in pixels")
		seed    = flag.Uint64("seed", 2019, "campaign seed (November 2019 vibes)")
		outDir  = flag.String("out", "out", "output directory")
		spec    = flag.String("labeler", "hsv", "labeling engine: hsv|kmeans|gmm[:k] (comma-separated list with -compare)")
		compare = flag.Bool("compare", false, "emit a labeler-agreement report instead of PNG products")
		demo    = flag.Bool("demo", false, "write one fully annotated demo scene and exit")
		procs   = flag.Int("procs", 0, "worker threads for the labeling kernels (0 = all cores); never changes outputs, only wall-clock")
	)
	flag.Parse()
	pool.SetSharedWorkers(*procs)

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatalf("creating %s: %v", *outDir, err)
	}

	if *demo {
		if err := runDemo(*outDir, *seed, *size); err != nil {
			log.Fatal(err)
		}
		return
	}

	cc := scene.DefaultCollection(*seed)
	cc.Scenes = *nScenes
	cc.W, cc.H = *size, *size
	scenes, err := scene.GenerateCollection(cc)
	if err != nil {
		log.Fatal(err)
	}

	if *compare {
		if err := runCompare(scenes, *spec, *seed, *outDir); err != nil {
			log.Fatal(err)
		}
		return
	}

	eng, err := labeler.Parse(*spec, *seed)
	if err != nil {
		log.Fatal(err)
	}

	var ssimOrig, ssimFilt float64
	for i, sc := range scenes {
		res := cloudfilter.FilterDefault(sc.Image)
		labOrig, err := eng.Label(sc.Image)
		if err != nil {
			log.Fatal(err)
		}
		labFilt, err := eng.Label(res.Image)
		if err != nil {
			log.Fatal(err)
		}

		manual := sc.Truth.Render()
		so, err := metrics.SSIMRGB(manual, labOrig.Render())
		if err != nil {
			log.Fatal(err)
		}
		sf, err := metrics.SSIMRGB(manual, labFilt.Render())
		if err != nil {
			log.Fatal(err)
		}
		ssimOrig += so
		ssimFilt += sf

		prefix := filepath.Join(*outDir, fmt.Sprintf("scene%02d", i))
		for name, img := range map[string]*raster.RGB{
			"":          sc.Image,
			"_filtered": res.Image,
			"_manual":   manual,
			"_auto":     labFilt.Render(),
		} {
			if err := img.WritePNG(prefix + name + ".png"); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("scene %02d: cloud %5.1f%%  SSIM original %.4f  filtered %.4f\n",
			i, 100*sc.CloudFraction, so, sf)
	}
	n := float64(len(scenes))
	fmt.Printf("\n%s auto-label SSIM vs manual: original %.4f, filtered %.4f (paper, hsv: 0.89 / 0.9964)\n",
		eng.Name(), ssimOrig/n, ssimFilt/n)
	fmt.Printf("outputs in %s\n", *outDir)
}

// runCompare filters every scene and runs the labeler-agreement report
// over the requested engines (comma-separated -labeler specs; a single
// spec is compared against the paper's HSV thresholder). The report is
// printed and written to <out>/agreement.txt; it is bit-reproducible for
// a fixed campaign seed.
func runCompare(scenes []*scene.Scene, specs string, seed uint64, outDir string) error {
	var engines []labeler.Labeler
	for _, s := range strings.Split(specs, ",") {
		eng, err := labeler.Parse(strings.TrimSpace(s), seed)
		if err != nil {
			return err
		}
		engines = append(engines, eng)
	}
	if len(engines) == 1 {
		if engines[0].Name() == "hsv" {
			return fmt.Errorf("-compare needs at least two distinct engines (e.g. -labeler hsv,kmeans,gmm)")
		}
		engines = append([]labeler.Labeler{labeler.PaperHSV()}, engines...)
	}
	imgs := make([]*raster.RGB, len(scenes))
	for i, sc := range scenes {
		imgs[i] = cloudfilter.FilterDefault(sc.Image).Image
	}
	report, err := labeler.Compare(imgs, engines)
	if err != nil {
		return err
	}
	fmt.Print(report)
	path := filepath.Join(outDir, "agreement.txt")
	if err := os.WriteFile(path, []byte(report), 0o644); err != nil {
		return err
	}
	fmt.Printf("report written to %s\n", path)
	return nil
}

// runDemo writes one scene with every intermediate product, the material
// of the paper's Figs 3–6 and 11.
func runDemo(outDir string, seed uint64, size int) error {
	cfg := scene.DefaultConfig(seed)
	cfg.W, cfg.H = size, size
	sc, err := scene.Generate(cfg)
	if err != nil {
		return err
	}
	res := cloudfilter.FilterDefault(sc.Image)
	labOrig, err := autolabel.LabelPaper(sc.Image)
	if err != nil {
		return err
	}
	labFilt, err := autolabel.LabelPaper(res.Image)
	if err != nil {
		return err
	}

	outputs := map[string]*raster.RGB{
		"demo_observed.png":      sc.Image,
		"demo_clean.png":         sc.Clean,
		"demo_filtered.png":      res.Image,
		"demo_manual_labels.png": sc.Truth.Render(),
		"demo_auto_original.png": labOrig.Render(),
		"demo_auto_filtered.png": labFilt.Render(),
	}
	for name, img := range outputs {
		if err := img.WritePNG(filepath.Join(outDir, name)); err != nil {
			return err
		}
	}
	if err := res.CloudMask.WritePNG(filepath.Join(outDir, "demo_cloudmask_est.png")); err != nil {
		return err
	}
	if err := sc.CloudMask.WritePNG(filepath.Join(outDir, "demo_cloudmask_true.png")); err != nil {
		return err
	}
	panel, err := raster.SideBySide(sc.Image, res.Image, sc.Truth.Render(), labFilt.Render())
	if err != nil {
		return err
	}
	if err := panel.WritePNG(filepath.Join(outDir, "demo_panel.png")); err != nil {
		return err
	}
	fmt.Printf("demo scene: cloud fraction %.1f%%, outputs in %s\n", 100*sc.CloudFraction, outDir)
	return nil
}
