package nn

import (
	"math"
	"testing"

	"seaice/internal/noise"
	"seaice/internal/pool"
	"seaice/internal/tensor"
)

// convToF32 builds a float32 twin of a float64 layer by seeding it
// identically: FillRandn draws in float64 and rounds, so the f32 weights
// are exactly the rounded f64 weights.
func convPair(k int) (*Conv2D[float64], *Conv2D[float32]) {
	return NewConv2D[float64]("c", 3, 4, k, noise.NewRNG(21, 1)),
		NewConv2D[float32]("c", 3, 4, k, noise.NewRNG(21, 1))
}

// TestF32ConvWithinToleranceOfF64: the float32 conv layers must match
// the float64 path within the documented bound
// tensor.PrecisionTolerance · accLen (accLen = InC·KH·KW + bias + input
// rounding) at every worker count — times a transform-amplification
// factor of 32 for the 3×3 case, whose float32 path runs the Winograd
// F(4×4,3×3) fast path (the Bᵀ/Aᵀ stencils scale intermediates by up to
// ~10 per 1-D pass before cancellation). This is the cross-precision
// tolerance guarantee; the float64 engine is bit-identical to its own
// reference (TestEngineStepsMatchLegacySteps).
func TestF32ConvWithinToleranceOfF64(t *testing.T) {
	defer pool.SetSharedWorkers(0)
	for _, k := range []int{1, 3} {
		c64, c32 := convPair(k)
		x64 := tensor.New[float64](2, 3, 8, 8)
		x64.FillRandn(noise.NewRNG(31, 2), 1)
		x32 := tensor.Convert[float32](x64)

		want := c64.Forward(x64, false)
		accLen := 3*k*k + 2
		tol := tensor.PrecisionTolerance * float64(accLen)
		if k == 3 {
			tol *= 32 // Winograd transform amplification headroom
		}
		for _, workers := range []int{1, 3, 8} {
			pool.SetSharedWorkers(workers)
			got := c32.Forward(x32, false)
			if len(got.Data) != len(want.Data) {
				t.Fatalf("k=%d workers=%d: %d outputs, want %d", k, workers, len(got.Data), len(want.Data))
			}
			for i := range want.Data {
				w := want.Data[i]
				if diff := math.Abs(float64(got.Data[i]) - w); diff > tol*math.Max(math.Abs(w), 1) {
					t.Fatalf("k=%d workers=%d: out[%d] = %g, f64 %g (diff %g > tol)", k, workers, i, got.Data[i], w, diff)
				}
			}
		}
	}
}

// TestAdamMasterWeightsRetainSmallUpdates: with float32 weights, updates
// far below the weight's float32 ulp must still accumulate through the
// float64 master copy — the reason mixed-precision training keeps one.
func TestAdamMasterWeightsRetainSmallUpdates(t *testing.T) {
	run := func(master bool) float32 {
		w := tensor.New[float32](1)
		w.Data[0] = 64 // ulp(64) = 2^-17 ≈ 7.6e-6 in float32
		p := &Param[float32]{Name: "w", W: w, Grad: tensor.New[float32](1)}
		// Per-step update ~1e-8 ≪ ulp, but 2000 accumulated steps ≈ 2e-5,
		// which is visible in float32 only if something integrated them.
		opt := NewAdam[float32](1e-8)
		opt.Master = master
		for i := 0; i < 2000; i++ {
			p.Grad.Data[0] = 1
			opt.Step([]*Param[float32]{p})
		}
		return w.Data[0]
	}
	if got := run(false); got != 64 {
		t.Fatalf("without master weights the sub-ulp updates should vanish, got %g", got)
	}
	if got := run(true); got >= 64 {
		t.Fatalf("master weights failed to accumulate sub-ulp updates: %g", got)
	}
}

// TestAdamF64MasterIsIdentity: for float64 parameters, enabling Master
// must not change a single bit of the trajectory (master copy ≡ weights).
func TestAdamF64MasterIsIdentity(t *testing.T) {
	run := func(master bool) []float64 {
		w := tensor.New[float64](8)
		g := tensor.New[float64](8)
		p := &Param[float64]{Name: "w", W: w, Grad: g}
		for i := range w.Data {
			w.Data[i] = float64(i)*0.25 - 1
		}
		opt := NewAdam[float64](0.05)
		opt.Master = master
		for s := 0; s < 50; s++ {
			for i := range g.Data {
				g.Data[i] = w.Data[i] * 0.5
			}
			opt.Step([]*Param[float64]{p})
		}
		return append([]float64(nil), w.Data...)
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("f64 master path diverged at %d: %g vs %g", i, a[i], b[i])
		}
	}
}
