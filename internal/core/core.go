// Package core is the workflow facade tying the whole reproduction
// together: scene campaign generation → thin-cloud/shadow filtering →
// auto-labeling → dataset assembly → U-Net-Man / U-Net-Auto training →
// evaluation. The experiment harness (cmd/seaice-bench), the examples,
// and the top-level benchmarks all drive this package rather than wiring
// the substrates by hand. Dataset assembly flows through the streaming
// sharded pipeline (internal/pipeline), whose output is byte-identical
// to the batch path, so every experiment result is deterministic in its
// AccuracyConfig regardless of stage parallelism.
package core

import (
	"fmt"
	"io"

	"seaice/internal/dataset"
	"seaice/internal/metrics"
	"seaice/internal/pipeline"
	"seaice/internal/scene"
	"seaice/internal/train"
	"seaice/internal/unet"
)

// AccuracyConfig scales the Table IV/V/Fig 13 experiment. The defaults
// reproduce the paper's comparisons at single-core scale (DESIGN.md §5).
type AccuracyConfig struct {
	// Campaign is the synthetic acquisition (paper: 66 scenes).
	Campaign scene.CollectionConfig
	// Build controls filtering/labeling/tiling.
	Build dataset.BuildConfig
	// TrainFrac is the train/test split (paper: 0.8).
	TrainFrac float64
	// Model is the U-Net variant to train.
	Model unet.Config
	// Epochs, BatchSize, LR configure both model trainings.
	Epochs    int
	BatchSize int
	LR        float64
	// TrainTiles/TestTiles subsample the split to fit the host budget
	// (0 = use everything).
	TrainTiles, TestTiles int
	Seed                  uint64
	// Progress, if non-nil, receives coarse stage notifications.
	Progress func(stage string)
}

// DefaultAccuracyConfig returns the experiment-scale configuration used
// by cmd/seaice-bench: the full 66-scene campaign (4224 tiles) with a
// FastConfig U-Net trained on a stratified subsample sized for a
// single-core host (~10 min; raise TrainTiles/TestTiles/Epochs on bigger
// machines).
func DefaultAccuracyConfig(seed uint64) AccuracyConfig {
	return AccuracyConfig{
		Campaign:   scene.DefaultCollection(seed),
		Build:      dataset.DefaultBuild(),
		TrainFrac:  0.8,
		Model:      unet.FastConfig(seed),
		Epochs:     8,
		BatchSize:  8,
		LR:         0.01,
		TrainTiles: 160,
		TestTiles:  224,
		Seed:       seed,
	}
}

// QuickAccuracyConfig is a reduced configuration for tests and the
// quickstart example (a few scenes, few epochs).
func QuickAccuracyConfig(seed uint64) AccuracyConfig {
	cfg := DefaultAccuracyConfig(seed)
	cfg.Campaign.Scenes = 8
	cfg.Campaign.W, cfg.Campaign.H = 256, 256
	cfg.Build.TileSize = 32
	cfg.Epochs = 10
	cfg.TrainTiles = 96
	cfg.TestTiles = 160
	return cfg
}

// Cell is one accuracy measurement: a model evaluated on one dataset
// view, always against manual (ground-truth) labels.
type Cell struct {
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
	Confusion *metrics.Confusion
}

// cellFrom summarizes a confusion matrix.
func cellFrom(c *metrics.Confusion) Cell {
	return Cell{
		Accuracy:  c.Accuracy(),
		Precision: c.MacroPrecision(),
		Recall:    c.MacroRecall(),
		F1:        c.MacroF1(),
		Confusion: c,
	}
}

// AccuracyResult carries everything Tables IV and V and Fig 13 report.
type AccuracyResult struct {
	// Man/Auto × Orig/Filt over the full test set (Table IV).
	ManOrig, AutoOrig, ManFilt, AutoFilt Cell
	// The same four cells over the >10% and ≤10% cloud-cover buckets
	// (Table V; Fig 13's six panels draw from these confusions).
	CloudyManOrig, CloudyAutoOrig, CloudyManFilt, CloudyAutoFilt Cell
	ClearManOrig, ClearAutoOrig, ClearManFilt, ClearAutoFilt     Cell
	// Auto-label agreement with manual labels (§IV-B2 SSIM analog).
	SSIMOriginal, SSIMFiltered float64
	// Dataset bookkeeping.
	Scenes, Tiles, TrainTiles, TestTiles, CloudyTest, ClearTest int
	// The trained models, for Fig 14 renderings and reuse.
	UNetMan, UNetAuto *unet.Model[float64]
	// The evaluated test tiles, for qualitative panels.
	Test []dataset.Tile
}

// progress reports a stage if a callback is configured.
func (cfg AccuracyConfig) progress(stage string) {
	if cfg.Progress != nil {
		cfg.Progress(stage)
	}
}

// RunAccuracy executes the full accuracy experiment: it trains U-Net-Man
// on (original imagery, manual labels) and U-Net-Auto on (original
// imagery, auto labels), then validates both on manual labels over
// original and filtered test imagery, whole and bucketed by cloud cover.
func RunAccuracy(cfg AccuracyConfig) (*AccuracyResult, error) {
	// The streaming pipeline generates, filters, labels, and tiles the
	// campaign with overlapped stages (scene generation is no longer a
	// serial prologue); its output is byte-identical to the legacy
	// generate-all → dataset.Build sequence it replaced.
	cfg.progress("streaming scene campaign through filter/label/tile")
	builder := pipeline.StreamBuilder{Config: pipeline.Config{Build: cfg.Build}}
	set, err := builder.BuildSet(pipeline.CollectionSource{Cfg: cfg.Campaign})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	trainTiles, testTiles, err := set.Split(cfg.TrainFrac, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	res := &AccuracyResult{
		Scenes: cfg.Campaign.Scenes,
		Tiles:  len(set.Tiles),
	}
	if cfg.TrainTiles > 0 {
		trainTiles = dataset.Subsample(trainTiles, cfg.TrainTiles, cfg.Seed+1)
	}
	if cfg.TestTiles > 0 {
		testTiles = dataset.Subsample(testTiles, cfg.TestTiles, cfg.Seed+2)
	}
	res.TrainTiles, res.TestTiles = len(trainTiles), len(testTiles)
	res.Test = testTiles

	// §IV-B2: auto-label agreement with manual labels before/after
	// filtering, measured over the test tiles.
	res.SSIMOriginal, res.SSIMFiltered, err = labelSSIM(testTiles, cfg.Build)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	trainCfg := train.Config{Epochs: cfg.Epochs, BatchSize: cfg.BatchSize, LR: cfg.LR, Seed: cfg.Seed}

	cfg.progress("training U-Net-Man")
	man, err := unet.New[float64](cfg.Model)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if _, err := train.Fit(man, dataset.Samples(trainTiles, dataset.OriginalImages, dataset.ManualLabels), trainCfg); err != nil {
		return nil, fmt.Errorf("core: U-Net-Man: %w", err)
	}
	res.UNetMan = man

	cfg.progress("training U-Net-Auto")
	autoCfg := cfg.Model
	autoCfg.Seed = cfg.Model.Seed + 1
	auto, err := unet.New[float64](autoCfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if _, err := train.Fit(auto, dataset.Samples(trainTiles, dataset.OriginalImages, dataset.AutoLabels), trainCfg); err != nil {
		return nil, fmt.Errorf("core: U-Net-Auto: %w", err)
	}
	res.UNetAuto = auto

	cfg.progress("evaluating")
	cloudy, clear := dataset.CloudBuckets(testTiles, 0.10)
	res.CloudyTest, res.ClearTest = len(cloudy), len(clear)

	eval := func(m *unet.Model[float64], tiles []dataset.Tile, img dataset.ImageKind) (Cell, error) {
		if len(tiles) == 0 {
			return Cell{}, nil
		}
		// Validation always scores against manual labels.
		conf, err := train.Evaluate(m, dataset.Samples(tiles, img, dataset.ManualLabels))
		if err != nil {
			return Cell{}, err
		}
		return cellFrom(conf), nil
	}

	type slot struct {
		dst   *Cell
		model *unet.Model[float64]
		tiles []dataset.Tile
		img   dataset.ImageKind
	}
	slots := []slot{
		{&res.ManOrig, man, testTiles, dataset.OriginalImages},
		{&res.AutoOrig, auto, testTiles, dataset.OriginalImages},
		{&res.ManFilt, man, testTiles, dataset.FilteredImages},
		{&res.AutoFilt, auto, testTiles, dataset.FilteredImages},
		{&res.CloudyManOrig, man, cloudy, dataset.OriginalImages},
		{&res.CloudyAutoOrig, auto, cloudy, dataset.OriginalImages},
		{&res.CloudyManFilt, man, cloudy, dataset.FilteredImages},
		{&res.CloudyAutoFilt, auto, cloudy, dataset.FilteredImages},
		{&res.ClearManOrig, man, clear, dataset.OriginalImages},
		{&res.ClearAutoOrig, auto, clear, dataset.OriginalImages},
		{&res.ClearManFilt, man, clear, dataset.FilteredImages},
		{&res.ClearAutoFilt, auto, clear, dataset.FilteredImages},
	}
	for _, s := range slots {
		c, err := eval(s.model, s.tiles, s.img)
		if err != nil {
			return nil, fmt.Errorf("core: evaluate: %w", err)
		}
		*s.dst = c
	}
	return res, nil
}

// labelSSIM computes the §IV-B2 agreement of auto labels with manual
// labels over rendered label maps, for original and filtered imagery.
func labelSSIM(tiles []dataset.Tile, build dataset.BuildConfig) (orig, filt float64, err error) {
	if len(tiles) == 0 {
		return 0, 0, fmt.Errorf("no tiles for SSIM")
	}
	var so, sf float64
	n := 0
	for _, t := range tiles {
		// Auto labels from the unfiltered tile must be recomputed (the
		// dataset's Auto view is derived from filtered imagery).
		labOrig, err := labelTile(t.Original, build)
		if err != nil {
			return 0, 0, err
		}
		manual := t.Manual.Render()
		a, err := metrics.SSIMRGB(manual, labOrig.Render())
		if err != nil {
			return 0, 0, err
		}
		b, err := metrics.SSIMRGB(manual, t.Auto.Render())
		if err != nil {
			return 0, 0, err
		}
		so += a
		sf += b
		n++
	}
	return so / float64(n), sf / float64(n), nil
}

// WriteSummary prints the headline numbers of an accuracy run.
func (r *AccuracyResult) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "scenes=%d tiles=%d train=%d test=%d (cloudy %d / clear %d)\n",
		r.Scenes, r.Tiles, r.TrainTiles, r.TestTiles, r.CloudyTest, r.ClearTest)
	fmt.Fprintf(w, "auto-label SSIM vs manual: original %.4f filtered %.4f\n", r.SSIMOriginal, r.SSIMFiltered)
	fmt.Fprintf(w, "U-Net-Man : original %.2f%%  filtered %.2f%%\n", 100*r.ManOrig.Accuracy, 100*r.ManFilt.Accuracy)
	fmt.Fprintf(w, "U-Net-Auto: original %.2f%%  filtered %.2f%%\n", 100*r.AutoOrig.Accuracy, 100*r.AutoFilt.Accuracy)
}
