package ddp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"seaice/internal/chaos"
	"seaice/internal/ring"
	"seaice/internal/tensor"
	"seaice/internal/transport"
	"seaice/internal/unet"
)

// modelBytes renders a model's parameters as raw bytes, matching
// weightsOf's rendering so network and in-process runs compare directly.
func modelBytes[S tensor.Scalar](m *unet.Model[S]) []byte {
	var buf bytes.Buffer
	var b [8]byte
	for _, p := range m.Params() {
		for _, v := range p.W.Data {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(float64(v)))
			buf.Write(b[:])
		}
	}
	return buf.Bytes()
}

// netHarness holds one in-test multi-process cluster: p loopback rings
// sharing a peer list, each with its own injector (as real processes
// would have).
type netHarness struct {
	peers []string
	lns   []net.Listener
}

func newNetHarness(t *testing.T, p int) *netHarness {
	t.Helper()
	h := &netHarness{peers: make([]string, p), lns: make([]net.Listener, p)}
	for r := 0; r < p; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		h.lns[r] = ln
		h.peers[r] = ln.Addr().String()
	}
	return h
}

// ring builds rank r's transport ring; spec seeds its private injector.
func (h *netHarness) ring(t *testing.T, r int, spec string) (*transport.Ring, *chaos.Injector) {
	t.Helper()
	var inj *chaos.Injector
	if spec != "" {
		sched, err := chaos.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		inj = chaos.New(sched, len(h.peers))
	}
	ln := h.lns[r]
	h.lns[r] = nil // consumed; a resume harness rebinds
	tr, err := transport.NewRing(transport.Config{
		Rank:      r,
		Peers:     h.peers,
		ClusterID: t.Name(),
		Timeout:   time.Second,
		Listener:  ln,
		Chaos:     inj,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, inj
}

// runNetRanks trains every rank concurrently over TCP and returns each
// rank's (result, error, final weight bytes).
func runNetRanks[S tensor.Scalar](t *testing.T, h *netHarness, modelCfg unet.Config,
	mkCfg func(rank int, inj *chaos.Injector) Config, spec string) ([]*Result, []error, [][]byte) {
	t.Helper()
	p := len(h.peers)
	samples := syntheticSamples(4, 24, 8)
	results := make([]*Result, p)
	errs := make([]error, p)
	weights := make([][]byte, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		ringR, inj := h.ring(t, r, spec)
		coll := &transport.Collective[S]{R: ringR}
		cfg := mkCfg(r, inj)
		tr, err := NewNet[S](modelCfg, cfg, coll)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(r int, tr *NetTrainer[S], coll *transport.Collective[S]) {
			defer wg.Done()
			defer coll.Close()
			if cfg.SnapshotPath != "" {
				if snap, err := LoadSnapshotFile(cfg.SnapshotPath); err == nil {
					if err := tr.Restore(snap); err != nil {
						errs[r] = err
						return
					}
				}
			}
			results[r], errs[r] = tr.Fit(samples)
			weights[r] = modelBytes(tr.Model())
		}(r, tr, coll)
	}
	wg.Wait()
	return results, errs, weights
}

// goldenWeights runs the never-failed in-process trainer at the same
// worker count and returns its rank-0 weight bytes.
func goldenWeights[S tensor.Scalar](t *testing.T, modelCfg unet.Config, workers int, master bool) []byte {
	t.Helper()
	samples := syntheticSamples(4, 24, 8)
	cfg := chaosTrainCfg(workers, "", t)
	cfg.MasterWeights = master
	tr, err := New[S](modelCfg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Fit(samples); err != nil {
		t.Fatal(err)
	}
	return weightsOf(tr)
}

// netFaultSpec injects one of every network fault kind across the run's
// 12 steps: a partition, a dropped frame, a slow link, a clean reconnect.
const netFaultSpec = "31:part@2:r1,drop@5:r0,slow@7:r2:10ms,reconn@9:r1"

// TestNetTrainBitIdentity is the tentpole invariant end-to-end: a
// 3-rank TCP training run with injected network partitions, dropped
// frames, slow links, and reconnects finishes with weights
// byte-identical to the never-failed single-process 3-worker run — for
// float64 and for float32 with float64 master weights.
func TestNetTrainBitIdentity(t *testing.T) {
	t.Run("float64", func(t *testing.T) { testNetBitIdentity[float64](t, false) })
	t.Run("float32-mixed", func(t *testing.T) { testNetBitIdentity[float32](t, true) })
}

func testNetBitIdentity[S tensor.Scalar](t *testing.T, master bool) {
	t.Helper()
	const p = 3
	modelCfg := dropoutConfig(11)
	want := goldenWeights[S](t, modelCfg, p, master)

	h := newNetHarness(t, p)
	results, errs, weights := runNetRanks[S](t, h, modelCfg, func(rank int, inj *chaos.Injector) Config {
		cfg := chaosTrainCfg(p, "", t)
		cfg.MasterWeights = master
		cfg.Chaos = inj
		return cfg
	}, netFaultSpec)
	recoveries := 0
	for r := 0; r < p; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		if !bytes.Equal(weights[r], want) {
			t.Errorf("rank %d weights diverge from the never-failed single-process run", r)
		}
		if results[r].Steps != 12 {
			t.Errorf("rank %d committed %d steps, want 12", r, results[r].Steps)
		}
		recoveries += results[r].Recoveries
	}
	if recoveries == 0 {
		t.Error("no recoveries recorded — the injected faults did not exercise the recovery path")
	}
}

// TestNetTrainLocalCollective runs the NetTrainer over the in-process
// Local collective (no sockets): the transports must be interchangeable
// behind ring.Collective, and the result must still match the
// single-process trainer bit for bit.
func TestNetTrainLocalCollective(t *testing.T) {
	const p = 3
	modelCfg := dropoutConfig(11)
	want := goldenWeights[float64](t, modelCfg, p, false)
	samples := syntheticSamples(4, 24, 8)

	colls, err := ring.NewLocal[float64](p)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([][]byte, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		tr, err := NewNet[float64](modelCfg, chaosTrainCfg(p, "", t), colls[r])
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(r int, tr *NetTrainer[float64]) {
			defer wg.Done()
			_, errs[r] = tr.Fit(samples)
			weights[r] = modelBytes(tr.Model())
		}(r, tr)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		if !bytes.Equal(weights[r], want) {
			t.Errorf("rank %d (local collective) diverges from single-process run", r)
		}
	}
}

// TestNetTrainKillResume kills the whole 3-rank cluster at a step
// boundary, restarts every rank from its rank-local snapshot file on
// fresh connections, injects a partition after the resume, and asserts
// the final weights still match the never-failed run — the
// cross-machine snapshot/resume path.
func TestNetTrainKillResume(t *testing.T) {
	const p = 3
	modelCfg := dropoutConfig(11)
	want := goldenWeights[float64](t, modelCfg, p, false)
	dir := t.TempDir()
	snapPath := func(r int) string { return filepath.Join(dir, fmt.Sprintf("snap.rank%d", r)) }
	mkCfg := func(rank int, inj *chaos.Injector) Config {
		cfg := chaosTrainCfg(p, "", t)
		cfg.Chaos = inj
		cfg.SnapshotPath = snapPath(rank)
		return cfg
	}

	// Phase 1: every rank dies at step 6 (snapshots land at 0 and 4).
	h := newNetHarness(t, p)
	_, errs, _ := runNetRanks[float64](t, h, modelCfg, mkCfg, "37:kill@6")
	for r, err := range errs {
		if !errors.Is(err, ErrKilled) {
			t.Fatalf("rank %d: got %v, want ErrKilled", r, err)
		}
	}

	// Phase 2: restart on fresh ports, resume from the rank-local
	// snapshots, and survive one more partition on the way to the end.
	h2 := newNetHarness(t, p)
	results, errs, weights := runNetRanks[float64](t, h2, modelCfg, mkCfg, "41:part@9:r2")
	for r := 0; r < p; r++ {
		if errs[r] != nil {
			t.Fatalf("resumed rank %d: %v", r, errs[r])
		}
		if !bytes.Equal(weights[r], want) {
			t.Errorf("resumed rank %d diverges from the never-failed run", r)
		}
		if results[r].Steps != 8 {
			t.Errorf("resumed rank %d committed %d steps, want 8 (12 total − 4 snapshotted)", r, results[r].Steps)
		}
	}
}
