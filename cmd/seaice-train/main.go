// Command seaice-train trains a U-Net sea-ice classifier on a synthetic
// campaign, either serially or with Horovod-style synchronous data
// parallelism over simulated GPUs (§III-C). It saves a checkpoint usable
// by seaice-infer. The dataset is fed through the streaming pipeline
// (internal/pipeline), so filtering and auto-labeling overlap training;
// cmd/seaice-pipeline exposes the full orchestration (sharding knobs,
// per-stage resume) on top of the same machinery.
//
// Training defaults to float32 mixed precision (float32 compute with
// float64 master weights in Adam) — the bandwidth-saving path; pass
// -precision f64 for the bit-exact master/reference engine.
//
// Training is elastic and fault tolerant: -chaos injects a seeded,
// deterministic fault schedule (replica crashes, process kills, stage
// panics, stragglers — see internal/chaos) that the stack recovers from
// with bit-identical results; -snapshot persists mid-epoch snapshots so
// a killed run resumes exactly with -resume.
//
// Usage:
//
//	seaice-train -preset fast -epochs 8 -labels auto -ckpt unet-auto.ckpt
//	seaice-train -workers 4 -epochs 4          # distributed (ring all-reduce)
//	seaice-train -preset paper -epochs 1       # full 28-conv-layer variant
//	seaice-train -precision f64                # float64 reference numerics
//	seaice-train -quantize -ckpt unet.q.ckpt   # int8-calibrated v3 checkpoint
//	seaice-train -workers 4 -chaos "7:crash@3:r1,crash@9" -snapshot unet.snap
//	seaice-train -snapshot unet.snap -resume   # continue a killed run
//	seaice-train -workers 3 -guard skip -chaos "7:nanstep@4:r1"  # roll back injected NaN grads
//	seaice-train -verify-snapshot unet.snap    # scrub on-disk snapshot integrity
//
// With -peers, the same data-parallel run executes across real processes
// over TCP (internal/transport): each process is one rank, the ring
// collectives go over the wire, and the result is byte-identical to the
// in-process run at the same world size — every mode prints a
// "weights sha256" fingerprint to prove it. Network faults (part, drop,
// slow, reconn from internal/chaos) are recovered transparently;
// snapshots are rank-local files, so a killed cluster resumes across
// machines:
//
//	seaice-train -peers 127.0.0.1:7701,127.0.0.1:7702 -rank 0 &
//	seaice-train -peers 127.0.0.1:7701,127.0.0.1:7702 -rank 1
package main

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"strconv"
	"strings"
	"time"

	"seaice/internal/chaos"
	"seaice/internal/dataset"
	"seaice/internal/ddp"
	"seaice/internal/labeler"
	"seaice/internal/nn"
	"seaice/internal/perfmodel"
	"seaice/internal/pipeline"
	"seaice/internal/pool"
	"seaice/internal/raster"
	"seaice/internal/scene"
	"seaice/internal/tensor"
	"seaice/internal/train"
	"seaice/internal/transport"
	"seaice/internal/unet"
)

// options carries the parsed flags into the precision-generic run.
type options struct {
	preset   string
	scenes   int
	size     int
	tile     int
	labels   string
	labSpec  string
	focal    *nn.FocalParams
	epochs   int
	batch    int
	lr       float64
	workers  int
	maxTiles int
	seed     uint64
	ckpt     string

	chaos     *chaos.Injector
	elastic   bool
	snapshot  string
	snapEvery int
	snapKeep  int
	resume    bool
	quantize  bool
	guard     train.GuardConfig

	// Network data parallelism: peers lists every rank's host:port (this
	// process listens on peers[rank] and is one rank of a real
	// multi-process cluster).
	peers     []string
	rank      int
	clusterID string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("seaice-train: ")

	var (
		o         options
		precision = flag.String("precision", "f32", "compute precision: f32 (mixed, f64 master weights) | f64 (reference)")
		procs     = flag.Int("procs", 0, "worker threads for the training engine's kernels (0 = all cores)")
		chaosSpec = flag.String("chaos", "", `deterministic fault schedule, e.g. "7:crash@3:r1,kill@9" (see internal/chaos)`)
		peersSpec = flag.String("peers", "", "comma-separated host:port list of every rank — run this process as one rank of a TCP cluster")
	)
	flag.IntVar(&o.rank, "rank", 0, "this process's rank within -peers")
	flag.StringVar(&o.clusterID, "cluster-id", "seaice", "cluster identity checked during the transport handshake")
	flag.StringVar(&o.preset, "preset", "fast", "model preset: fast | paper")
	flag.IntVar(&o.scenes, "scenes", 12, "scenes in the training campaign")
	flag.IntVar(&o.size, "size", 256, "scene size")
	flag.IntVar(&o.tile, "tile", 32, "tile size")
	flag.StringVar(&o.labels, "labels", "auto", "training labels: manual | auto")
	flag.StringVar(&o.labSpec, "labeler", "hsv", "auto-labeling engine: hsv|kmeans|gmm[:k]")
	focalSpec := flag.String("focal", "", `train with focal loss: "gamma" or "gamma:a0,a1,a2" per-class alphas (e.g. 2 or 2:0.25,1,0.5); empty = cross-entropy`)
	flag.IntVar(&o.epochs, "epochs", 8, "training epochs")
	flag.IntVar(&o.batch, "batch", 8, "batch size (per worker when -workers > 1)")
	flag.Float64Var(&o.lr, "lr", 0.01, "Adam learning rate")
	flag.IntVar(&o.workers, "workers", 1, "simulated GPUs for distributed training")
	flag.IntVar(&o.maxTiles, "max-tiles", 256, "cap on training tiles (0 = all)")
	flag.Uint64Var(&o.seed, "seed", 7, "seed")
	flag.StringVar(&o.ckpt, "ckpt", "unet.ckpt", "checkpoint output path")
	flag.BoolVar(&o.elastic, "elastic", false, "continue degraded over survivors after a crash instead of heal-and-retry")
	flag.StringVar(&o.snapshot, "snapshot", "", "persist mid-epoch training snapshots to this file (enables -resume)")
	flag.IntVar(&o.snapEvery, "snapshot-every", 0, "steps between snapshots (0 = every 8)")
	flag.IntVar(&o.snapKeep, "snapshot-keep", 0, "snapshot rotation depth: newest plus keep-1 fallback generations (0 = 2)")
	flag.BoolVar(&o.resume, "resume", false, "resume from the -snapshot file's newest verifiable rotation entry")
	guardSpec := flag.String("guard", "", `numeric anomaly guard: "skip" or "abort", optionally ":maxnorm" (e.g. skip:1e3); empty = off`)
	verifySnap := flag.String("verify-snapshot", "", "scrub mode: verify the integrity of this snapshot file (and its rotation entries), report per section, and exit")
	flag.BoolVar(&o.quantize, "quantize", false, "post-training-quantize: calibrate on training tiles and write a v3 quantized checkpoint (serves f64, f32, and int8)")
	flag.Parse()
	// Resolve the rotation depth here, once: save rotation, resume
	// fallback, and -verify-snapshot must all walk the same number of
	// generations, and ddp only normalizes the value carried in its
	// Config — the load paths take the depth as a bare argument.
	if o.snapKeep <= 0 {
		o.snapKeep = ddp.DefaultSnapshotKeep
	}
	if *verifySnap != "" {
		verifySnapshot(*verifySnap, o.snapKeep)
		return
	}
	var err error
	if o.guard, err = train.ParseGuard(*guardSpec); err != nil {
		log.Fatal(err)
	}
	if o.focal, err = parseFocal(*focalSpec); err != nil {
		log.Fatal(err)
	}
	pool.SetSharedWorkers(*procs)
	log.Printf("training engine: %d kernel workers, %s precision", pool.Shared().Workers(), *precision)

	if *peersSpec != "" {
		for _, p := range strings.Split(*peersSpec, ",") {
			if p = strings.TrimSpace(p); p != "" {
				o.peers = append(o.peers, p)
			}
		}
		if o.rank < 0 || o.rank >= len(o.peers) {
			log.Fatalf("-rank %d outside -peers list of %d", o.rank, len(o.peers))
		}
		// In net mode the world size is the peer list; -workers must
		// agree when set.
		if o.workers != 1 && o.workers != len(o.peers) {
			log.Fatalf("-workers %d conflicts with %d -peers (omit -workers in net mode)", o.workers, len(o.peers))
		}
		o.workers = len(o.peers)
	}
	if *chaosSpec != "" {
		sched, err := chaos.Parse(*chaosSpec)
		if err != nil {
			log.Fatal(err)
		}
		o.chaos = chaos.New(sched, o.workers)
		if len(o.peers) > 0 {
			// In-process-only fault kinds have no meaning across real
			// processes (each process heals its own replica; stage and
			// serve panics live in other subsystems).
			for _, k := range []chaos.Kind{chaos.ReplicaCrash, chaos.StagePanic, chaos.ServePanic} {
				if o.chaos.Count(k) > 0 {
					log.Fatalf("chaos kind %q is in-process only and cannot be injected in -peers mode", k)
				}
			}
		}
		log.Printf("chaos: injecting %d seeded faults (%s)", o.chaos.Remaining(), *chaosSpec)
	}
	if o.resume && o.snapshot == "" {
		log.Fatal("-resume requires -snapshot <path>")
	}
	if len(o.peers) > 0 && o.elastic {
		log.Fatal("-elastic is not supported in -peers mode (network training heals and retries)")
	}

	switch *precision {
	case "f32":
		run[float32](o, true)
	case "f64":
		run[float64](o, false)
	default:
		log.Fatalf("unknown precision %q (want f32 or f64)", *precision)
	}
}

// run executes the whole train → evaluate → checkpoint flow in the chosen
// compute precision. master enables float64 master weights in Adam (the
// mixed-precision default for f32; a no-op for f64).
func run[S tensor.Scalar](o options, master bool) {
	var modelCfg unet.Config
	switch o.preset {
	case "fast":
		modelCfg = unet.FastConfig(o.seed)
	case "paper":
		modelCfg = unet.PaperConfig(o.seed)
	default:
		log.Fatalf("unknown preset %q", o.preset)
	}
	if o.tile < modelCfg.MinInputSize() {
		log.Fatalf("tile size %d below the %s preset's minimum %d", o.tile, o.preset, modelCfg.MinInputSize())
	}

	var labKind dataset.LabelKind
	switch o.labels {
	case "manual":
		labKind = dataset.ManualLabels
	case "auto":
		labKind = dataset.AutoLabels
	default:
		log.Fatalf("unknown label kind %q", o.labels)
	}

	cc := scene.DefaultCollection(o.seed)
	cc.Scenes = o.scenes
	cc.W, cc.H = o.size, o.size

	// The streaming pipeline replaces the old generate-all → build-all
	// sequence: scenes are generated, filtered, and labeled by
	// concurrent stage workers while training consumes its first
	// batches. Split, subsample, and batch order are byte-identical to
	// the legacy batch path (see internal/pipeline parity tests).
	build := dataset.DefaultBuild()
	build.TileSize = o.tile
	eng, err := labeler.Parse(o.labSpec, o.seed)
	if err != nil {
		log.Fatal(err)
	}
	build.Labeler = eng
	plan := &pipeline.TrainPlan{
		TrainFrac: 0.8, SplitSeed: o.seed,
		TrainTiles: o.maxTiles, TrainSeed: o.seed,
		TestTiles: 128, TestSeed: o.seed + 1,
		Image: dataset.OriginalImages, Labels: labKind,
		BatchSize: o.batch, BatchSeed: o.seed,
	}
	// Fault-tolerant runs always use the ddp trainer (it owns the
	// snapshot/recovery machinery), even at one worker.
	netMode := len(o.peers) > 0
	useDDP := !netMode && (o.workers > 1 || o.chaos != nil || o.resume || o.snapshot != "")
	if netMode {
		plan.BatchSize = o.batch * o.workers
	}
	if useDDP {
		// The ddp trainer shards globally, so the global batch is the
		// planning unit.
		plan.BatchSize = o.batch * o.workers
	}
	// With chaos active, stage faults need a retry budget to be
	// recoverable rather than fatal — sized from the schedule, since a
	// spec may stack several faults on one scene.
	retries := o.chaos.Count(chaos.StagePanic)
	log.Printf("streaming %d scenes of %dx%d through filter/label/tile (%s labeling)…", o.scenes, o.size, o.size, eng.Name())
	st, err := pipeline.New(pipeline.CollectionSource{Cfg: cc}, pipeline.Config{
		Build:   build,
		Plan:    plan,
		Chaos:   o.chaos,
		Retries: retries,
		Progress: func(ev pipeline.Event) {
			switch ev.Kind {
			case "shard":
				log.Printf("labeled shard %d/%d (%d/%d scenes)", ev.Shard+1, ev.Shards, ev.ScenesDone, ev.Scenes)
			case "retry":
				log.Printf("stage fault on shard %d — retrying scene", ev.Shard+1)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	nTrain, err := st.TrainLen()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("training on %d tiles (%s labels), %d epochs, preset %s (%d conv layers)",
		nTrain, o.labels, o.epochs, o.preset, modelCfg.NumConvLayers())

	var model *unet.Model[S]
	if netMode {
		samples, err := st.TrainSamples()
		if err != nil {
			log.Fatal(err)
		}
		model = runNet[S](o, modelCfg, samples, master)
	} else if useDDP {
		samples, err := st.TrainSamples()
		if err != nil {
			log.Fatal(err)
		}
		nTrain = len(samples)
		tr, err := ddp.New[S](modelCfg, ddp.Config{
			Workers:        o.workers,
			BatchPerWorker: o.batch,
			Epochs:         o.epochs,
			LR:             o.lr,
			Seed:           o.seed,
			MasterWeights:  master,
			Focal:          o.focal,
			Timing:         perfmodel.PaperDGX(),
			Chaos:          o.chaos,
			SnapshotPath:   o.snapshot,
			SnapshotEvery:  o.snapEvery,
			SnapshotKeep:   o.snapKeep,
			Guard:          o.guard,
			Elastic:        o.elastic,
			Progress: func(epoch int, loss float64) {
				log.Printf("epoch %d: loss %.4f", epoch, loss)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		if o.resume {
			snap, entry, err := ddp.LoadSnapshotFallback(o.snapshot, o.snapKeep)
			if err != nil {
				log.Fatal(err)
			}
			if err := tr.Restore(snap); err != nil {
				log.Fatal(err)
			}
			log.Printf("resumed from %s at global step %d", entry, snap.Step)
		}
		res, err := tr.Fit(samples)
		if errors.Is(err, ddp.ErrKilled) {
			for _, ev := range o.chaos.Events() {
				log.Printf("chaos: delivered %s", ev)
			}
			if o.snapshot != "" && o.elastic {
				// Elastic runs stop snapshotting once the complement
				// degrades, so a resume replays from the last
				// full-complement snapshot with every rank healed — a
				// different run than the degraded one that died.
				log.Fatalf("run killed by injected fault after %d committed steps; rerun with -snapshot %s -resume (drop -chaos) to restart from the last full-complement snapshot — elastic steps after it are not replayed",
					res.Steps, o.snapshot)
			}
			if o.snapshot != "" {
				log.Fatalf("run killed by injected fault after %d committed steps; rerun with -snapshot %s -resume (drop -chaos, or the kill re-arms and fires again) to continue bit-identically",
					res.Steps, o.snapshot)
			}
			log.Fatalf("run killed by injected fault after %d committed steps; no -snapshot was set, so the training state is lost (pass -snapshot PATH to make kills resumable)",
				res.Steps)
		}
		if err != nil {
			log.Fatal(err)
		}
		if o.chaos != nil {
			for _, ev := range o.chaos.Events() {
				log.Printf("chaos: delivered %s", ev)
			}
			log.Printf("chaos: %d replicas healed, %d snapshot replays, %d stragglers absorbed, %d faults undelivered",
				res.Recoveries, res.Replays, res.Stalls, o.chaos.Remaining())
			if res.Anomalies > 0 {
				log.Printf("guard: %d gradient anomalies detected, %d updates skipped", res.Anomalies, res.GuardSkips)
			}
			if len(res.LostRanks) > 0 {
				log.Printf("chaos: finished elastically without ranks %v", res.LostRanks)
			}
		}
		log.Printf("distributed training: %d workers, virtual DGX time %.2f s, real %.2f s",
			o.workers, res.VirtualTotal, res.RealTotal)
		model = tr.Replica(0)
	} else {
		batches, err := pipeline.TrainBatchesOf[S](st)
		if err != nil {
			log.Fatal(err)
		}
		model, err = unet.New[S](modelCfg)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := train.FitStream(model, batches, train.Config{
			Epochs: o.epochs, BatchSize: o.batch, LR: o.lr, Seed: o.seed,
			MasterWeights: master, Focal: o.focal,
			Progress: func(epoch int, loss float64) {
				log.Printf("epoch %d: loss %.4f", epoch, loss)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		log.Printf("streamed training: %d steps in %s (%.1f ms/step, %.1f tiles/s)",
			res.Steps, elapsed.Round(time.Millisecond),
			float64(elapsed.Milliseconds())/float64(res.Steps),
			float64(nTrain*o.epochs)/elapsed.Seconds())
	}

	// The deterministic weight fingerprint every mode logs (float64 bit
	// patterns of all parameters, in Params order) — the cross-process
	// identity check the cluster smoke test greps for.
	fmt.Printf("weights sha256: %x\n", weightsSHA(model))
	if netMode && o.rank != 0 {
		// Every rank finishes with identical weights; rank 0 owns
		// evaluation and the checkpoint.
		return
	}

	// Validate on held-out tiles against manual labels.
	testTiles, err := st.TestTiles()
	if err != nil {
		log.Fatal(err)
	}
	conf, err := train.Evaluate(model, dataset.Samples(testTiles, dataset.FilteredImages, dataset.ManualLabels))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validation accuracy (filtered imagery, manual labels): %.2f%%\n", 100*conf.Accuracy())
	fmt.Println(conf)

	if o.quantize {
		qm, err := quantizeTrained(model, st, o.batch)
		if err != nil {
			log.Fatal(err)
		}
		if err := qm.SaveFile(o.ckpt); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("quantized checkpoint (v3) written to %s — serves f64, f32, and int8\n", o.ckpt)
		return
	}
	if err := model.SaveFile(o.ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint written to %s\n", o.ckpt)
}

// calibrationTileCap bounds the calibration pass: activation ranges
// saturate after a few dozen representative tiles, so running the whole
// campaign through the float engine again would be pure waste.
const calibrationTileCap = 128

// quantizeTrained rebuilds the float64 master from the trained model (a
// no-op copy for f64, the Adam master weights for f32), calibrates
// activation ranges over training tiles, and quantizes to int8.
func quantizeTrained[S tensor.Scalar](model *unet.Model[S], st *pipeline.Stream, batch int) (*unet.QuantModel, error) {
	master, err := unet.New[float64](model.Config())
	if err != nil {
		return nil, err
	}
	if err := master.SetWeightsF64(model.WeightsF64()); err != nil {
		return nil, err
	}
	samples, err := st.TrainSamples()
	if err != nil {
		return nil, err
	}
	if len(samples) > calibrationTileCap {
		samples = samples[:calibrationTileCap]
	}
	imgs := make([]*raster.RGB, len(samples))
	for i := range samples {
		imgs[i] = samples[i].Image
	}
	log.Printf("calibrating int8 activation ranges on %d training tiles", len(imgs))
	cal, err := unet.Calibrate(master, imgs, batch)
	if err != nil {
		return nil, err
	}
	return unet.Quantize(master, cal)
}

// runNet trains this process as one rank of a TCP cluster: the ring
// collectives run over internal/transport, so the run is byte-identical
// to the in-process trainer at the same world size — across injected
// partitions, dropped frames, and process kills.
func runNet[S tensor.Scalar](o options, modelCfg unet.Config, samples []train.Sample, master bool) *unet.Model[S] {
	snapPath := o.snapshot
	if snapPath != "" {
		// Snapshots are rank-local: each process persists and resumes
		// its own file, as real machines would.
		snapPath = fmt.Sprintf("%s.rank%d", o.snapshot, o.rank)
	}
	ringT, err := transport.NewRing(transport.Config{
		Rank:      o.rank,
		Peers:     o.peers,
		ClusterID: o.clusterID,
		Chaos:     o.chaos,
		Logf:      log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	coll := &transport.Collective[S]{R: ringT}
	defer coll.Close()

	tr, err := ddp.NewNet[S](modelCfg, ddp.Config{
		Workers:        o.workers,
		BatchPerWorker: o.batch,
		Epochs:         o.epochs,
		LR:             o.lr,
		Seed:           o.seed,
		MasterWeights:  master,
		Focal:          o.focal,
		Timing:         perfmodel.PaperDGX(),
		Chaos:          o.chaos,
		SnapshotPath:   snapPath,
		SnapshotEvery:  o.snapEvery,
		SnapshotKeep:   o.snapKeep,
		Guard:          o.guard,
		Progress: func(epoch int, loss float64) {
			log.Printf("rank %d epoch %d: loss %.4f (rank-local)", o.rank, epoch, loss)
		},
	}, coll)
	if err != nil {
		log.Fatal(err)
	}
	if o.resume {
		snap, entry, err := ddp.LoadSnapshotFallback(snapPath, o.snapKeep)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.Restore(snap); err != nil {
			log.Fatal(err)
		}
		log.Printf("rank %d resumed from %s at global step %d", o.rank, entry, snap.Step)
	}
	log.Printf("rank %d/%d listening on %s, cluster %q", o.rank, o.workers, o.peers[o.rank], o.clusterID)
	res, err := tr.Fit(samples)
	if errors.Is(err, ddp.ErrKilled) {
		for _, ev := range o.chaos.Events() {
			log.Printf("chaos: delivered %s", ev)
		}
		if o.snapshot != "" {
			log.Fatalf("rank %d killed by injected fault after %d committed steps; rerun every rank with -snapshot %s -resume (drop the kill from -chaos) to continue bit-identically",
				o.rank, res.Steps, o.snapshot)
		}
		log.Fatalf("rank %d killed by injected fault after %d committed steps; no -snapshot was set, so the training state is lost",
			o.rank, res.Steps)
	}
	if err != nil {
		log.Fatal(err)
	}
	if o.chaos != nil {
		for _, ev := range o.chaos.Events() {
			log.Printf("chaos: delivered %s", ev)
		}
		log.Printf("chaos: %d network recoveries, %d stragglers absorbed, %d faults undelivered",
			res.Recoveries, res.Stalls, o.chaos.Remaining())
		if res.Anomalies > 0 {
			log.Printf("guard: rank %d saw %d gradient anomalies, %d updates skipped", o.rank, res.Anomalies, res.GuardSkips)
		}
	}
	log.Printf("network training: rank %d of %d, %d committed steps, virtual DGX time %.2f s, real %.2f s",
		o.rank, o.workers, res.Steps, res.VirtualTotal, res.RealTotal)
	return tr.Model()
}

// verifySnapshot is the -verify-snapshot scrub mode: it checks every
// rotation entry of a snapshot file for on-disk integrity — header,
// length, CRC32C trailer, decodability, and numeric sanity of the
// decoded state — printing a per-section report and exiting non-zero if
// the newest entry (the one -resume would prefer) does not verify.
func verifySnapshot(path string, keep int) {
	if keep <= 0 {
		keep = ddp.DefaultSnapshotKeep
	}
	bad := false
	for i := 0; i < keep; i++ {
		entry := path
		if i > 0 {
			entry = fmt.Sprintf("%s.%d", path, i)
		}
		snap, err := ddp.LoadSnapshotFile(entry)
		if err != nil {
			switch {
			case errors.Is(err, ddp.ErrCorruptSnapshot):
				fmt.Printf("%s: CORRUPT — %v\n", entry, err)
				bad = bad || i == 0
			case errors.Is(err, ddp.ErrBadSnapshot):
				fmt.Printf("%s: MALFORMED — %v\n", entry, err)
				bad = bad || i == 0
			default:
				if i > 0 {
					continue // older generations simply absent
				}
				fmt.Printf("%s: UNREADABLE — %v\n", entry, err)
				bad = true
			}
			continue
		}
		params, nonFinite := 0, 0
		for _, w := range snap.Weights {
			params += len(w)
			for _, v := range w {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					nonFinite++
				}
			}
		}
		fmt.Printf("%s: OK — header ok, CRC ok, step %d, precision %s, %d ranks, %d weight values\n",
			entry, snap.Step, snap.Precision, len(snap.RNG), params)
		if nonFinite > 0 {
			fmt.Printf("%s: NUMERIC — %d non-finite weight values\n", entry, nonFinite)
			bad = bad || i == 0
		}
	}
	if bad {
		log.Fatalf("snapshot %s failed verification", path)
	}
}

// parseFocal parses the -focal spec: "" (nil — plain cross-entropy),
// "gamma", or "gamma:a0,a1,..." with one alpha per class.
func parseFocal(spec string) (*nn.FocalParams, error) {
	if spec == "" {
		return nil, nil
	}
	gammaStr, alphaStr, hasAlpha := strings.Cut(spec, ":")
	gamma, err := strconv.ParseFloat(gammaStr, 64)
	if err != nil || gamma < 0 {
		return nil, fmt.Errorf(`-focal %q: want "gamma" or "gamma:a0,a1,..." with gamma ≥ 0`, spec)
	}
	p := &nn.FocalParams{Gamma: gamma}
	if hasAlpha {
		for _, a := range strings.Split(alphaStr, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(a), 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("-focal %q: bad alpha %q", spec, a)
			}
			p.Alpha = append(p.Alpha, v)
		}
		if len(p.Alpha) != int(raster.NumClasses) {
			return nil, fmt.Errorf("-focal %q: %d alphas for %d classes", spec, len(p.Alpha), raster.NumClasses)
		}
	}
	return p, nil
}

// weightsSHA hashes the model's parameters as float64 little-endian bit
// patterns in Params order — a render-independent fingerprint identical
// across precisions' master copies and across processes.
func weightsSHA[S tensor.Scalar](m *unet.Model[S]) []byte {
	h := sha256.New()
	var b [8]byte
	for _, p := range m.Params() {
		for _, v := range p.W.Data {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(float64(v)))
			h.Write(b[:])
		}
	}
	return h.Sum(nil)
}
