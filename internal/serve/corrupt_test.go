package serve

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestCorruptModelFailsWarmup asserts a model whose checkpoint was
// already poisoned at load never makes it into serving: the startup
// warmup prediction trips the non-finite guard and NewServer fails.
func TestCorruptModelFailsWarmup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 16

	m := testModel(t, 1)
	ps := m.Params()
	ps[len(ps)-1].W.Data[0] = math.NaN()

	reg := NewRegistry()
	if err := reg.Add("default", m); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(cfg, reg)
	if err == nil {
		srv.Close()
		t.Fatal("NewServer accepted a model with non-finite logits")
	}
	if !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("warmup error %q does not name the non-finite logits", err)
	}
}

// TestCorruptModelRejectedWith400 corrupts a weight after the server is
// up (in-memory corruption mid-serving) and asserts /classify rejects
// the non-finite prediction with HTTP 400 — and keeps rejecting it,
// proving the garbage result never entered the cache.
func TestCorruptModelRejectedWith400(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TileSize = 16

	m := testModel(t, 1)
	reg := NewRegistry()
	if err := reg.Add("default", m); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	// Sessions read the registry's model in place: the flipped bit is
	// visible to every subsequent forward pass.
	ps := m.Params()
	ps[len(ps)-1].W.Data[0] = math.NaN()

	tile := testTiles(1, 16, 6)[0]
	for attempt := 0; attempt < 2; attempt++ {
		resp, body := postPNG(t, http.DefaultClient, ts.URL+"/classify", tile)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("attempt %d: status %d, want 400 (body %q)", attempt, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "non-finite") {
			t.Fatalf("attempt %d: body %q does not name the non-finite logits", attempt, body)
		}
	}
}
