package unet

import (
	"fmt"
	"math"

	"seaice/internal/nn"
	"seaice/internal/tensor"
)

// InputQuant is the fixed quantization of the network input. Tiles
// arrive as 8-bit pixels normalized to [0, 1], so the exact affine map
// q = round(127·pix/255) needs no calibration and introduces at most
// half a step (1/254) of input error.
var InputQuant = tensor.ActQuant{Scale: 1.0 / tensor.QuantMax, Zero: 0}

// qBlock is a quantized double-convolution group whose conv1 reads a
// single source (zIn is that source's zero-point, needed for the im2col
// padding byte; conv2 always reads conv1's output).
type qBlock struct {
	conv1, conv2 *nn.QConv
	zIn          uint8
	conv2Q       tensor.ActQuant // conv2's output quantization
}

// qDec is a decoder block: conv1 reads the virtual concat of the encoder
// skip (zero-point zSkip) and the up-convolution output (zUp).
type qDec struct {
	conv1, conv2 *nn.QConv
	zSkip, zUp   uint8
}

// QuantModel is the int8 rendering of a trained float64 master: per-
// output-channel symmetric int8 weights, calibrated activation
// quantizations, and fully integer inference (see internal/nn's
// quantized layers). It retains the master weights and the activation
// tables so it can be checkpointed (version 3) and rebuilt exactly.
//
// A QuantModel's weights are read-only after construction; like the
// float Model it may be shared by any number of sessions.
type QuantModel struct {
	cfg     Config
	weights map[string][]float64
	acts    map[string]tensor.ActQuant

	enc  []*qBlock
	bot  *qBlock
	ups  []*nn.QConvT
	dec  []*qDec
	head *nn.QHead
}

// Quantize builds the int8 model from a float64 master and its
// calibration. Quantization is deterministic: the same master and
// calibration always produce bit-identical tables, at any pool worker
// count.
func Quantize(m *Model[float64], cal *Calibration) (*QuantModel, error) {
	return buildQuant(m.Config(), m.WeightsF64(), cal.ActQuants())
}

// RequiredStages lists the activation stages a quantized build of cfg
// needs calibrations for.
func RequiredStages(cfg Config) []string {
	var out []string
	for l := 0; l < cfg.Depth; l++ {
		out = append(out, fmt.Sprintf("enc%d.conv1", l), fmt.Sprintf("enc%d.conv2", l))
	}
	out = append(out, "bottleneck.conv1", "bottleneck.conv2")
	for l := cfg.Depth - 1; l >= 0; l-- {
		out = append(out, fmt.Sprintf("up%d", l), fmt.Sprintf("dec%d.conv1", l), fmt.Sprintf("dec%d.conv2", l))
	}
	return out
}

// buildQuant assembles a QuantModel from checkpoint-shaped state: master
// weights by parameter name plus activation quantizations by stage. It
// is the single construction path for both Quantize and the version-3
// checkpoint loader, so a save/load round trip rebuilds identical
// tables.
func buildQuant(cfg Config, weights map[string][]float64, acts map[string]tensor.ActQuant) (*QuantModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	qm := &QuantModel{cfg: cfg, weights: weights, acts: acts}

	getW := func(name string, want int) ([]float64, error) {
		w, ok := weights[name]
		if !ok {
			return nil, fmt.Errorf("unet: quantize: missing weights for %s", name)
		}
		if len(w) != want {
			return nil, fmt.Errorf("unet: quantize: %s has %d values, want %d", name, len(w), want)
		}
		return w, nil
	}
	getAct := func(stage string) (tensor.ActQuant, error) {
		a, ok := acts[stage]
		if !ok {
			return a, fmt.Errorf("unet: quantize: missing activation quantization for stage %s", stage)
		}
		if !(a.Scale > 0) || math.IsInf(a.Scale, 0) || math.IsNaN(a.Scale) {
			return a, fmt.Errorf("unet: quantize: stage %s has invalid scale %v", stage, a.Scale)
		}
		if a.Zero > tensor.QuantMax {
			return a, fmt.Errorf("unet: quantize: stage %s zero-point %d exceeds %d", stage, a.Zero, tensor.QuantMax)
		}
		return a, nil
	}
	uniform := func(q tensor.ActQuant, n int) []tensor.ActQuant {
		out := make([]tensor.ActQuant, n)
		for i := range out {
			out[i] = q
		}
		return out
	}
	qconv := func(name string, inC, outC, k int, in []tensor.ActQuant) (*nn.QConv, tensor.ActQuant, error) {
		w, err := getW(name+".weight", outC*inC*k*k)
		if err != nil {
			return nil, tensor.ActQuant{}, err
		}
		b, err := getW(name+".bias", outC)
		if err != nil {
			return nil, tensor.ActQuant{}, err
		}
		out, err := getAct(name)
		if err != nil {
			return nil, tensor.ActQuant{}, err
		}
		c, err := nn.NewQConv(name, inC, outC, k, w, b, in, out)
		return c, out, err
	}

	// Contracting path.
	inC, ch := cfg.InChannels, cfg.BaseChannels
	curQ := InputQuant
	for l := 0; l < cfg.Depth; l++ {
		c1, q1, err := qconv(fmt.Sprintf("enc%d.conv1", l), inC, ch, 3, uniform(curQ, inC))
		if err != nil {
			return nil, err
		}
		c2, q2, err := qconv(fmt.Sprintf("enc%d.conv2", l), ch, ch, 3, uniform(q1, ch))
		if err != nil {
			return nil, err
		}
		qm.enc = append(qm.enc, &qBlock{conv1: c1, conv2: c2, zIn: curQ.Zero, conv2Q: q2})
		curQ = q2 // max-pool preserves quantization
		inC, ch = ch, ch*2
	}

	// Bottleneck.
	b1, q1, err := qconv("bottleneck.conv1", inC, ch, 3, uniform(curQ, inC))
	if err != nil {
		return nil, err
	}
	b2, q2, err := qconv("bottleneck.conv2", ch, ch, 3, uniform(q1, ch))
	if err != nil {
		return nil, err
	}
	qm.bot = &qBlock{conv1: b1, conv2: b2, zIn: curQ.Zero, conv2Q: q2}
	curQ = q2

	// Expanding path.
	for l := cfg.Depth - 1; l >= 0; l-- {
		skipC := cfg.BaseChannels << l
		upName := fmt.Sprintf("up%d", l)
		uw, err := getW(upName+".weight", ch*skipC*4)
		if err != nil {
			return nil, err
		}
		ub, err := getW(upName+".bias", skipC)
		if err != nil {
			return nil, err
		}
		upQ, err := getAct(upName)
		if err != nil {
			return nil, err
		}
		up, err := nn.NewQConvT(upName, ch, skipC, uw, ub, uniform(curQ, ch), upQ)
		if err != nil {
			return nil, err
		}
		qm.ups = append(qm.ups, up)

		skipQ := qm.enc[l].conv2Out()
		concatQ := append(uniform(skipQ, skipC), uniform(upQ, skipC)...)
		d1, dq1, err := qconv(fmt.Sprintf("dec%d.conv1", l), 2*skipC, skipC, 3, concatQ)
		if err != nil {
			return nil, err
		}
		d2, dq2, err := qconv(fmt.Sprintf("dec%d.conv2", l), skipC, skipC, 3, uniform(dq1, skipC))
		if err != nil {
			return nil, err
		}
		qm.dec = append(qm.dec, &qDec{conv1: d1, conv2: d2, zSkip: skipQ.Zero, zUp: upQ.Zero})
		curQ, ch = dq2, skipC
	}

	// Head.
	hw, err := getW("final.weight", cfg.Classes*cfg.BaseChannels)
	if err != nil {
		return nil, err
	}
	hb, err := getW("final.bias", cfg.Classes)
	if err != nil {
		return nil, err
	}
	qm.head, err = nn.NewQHead(cfg.BaseChannels, cfg.Classes, hw, hb, uniform(curQ, cfg.BaseChannels))
	if err != nil {
		return nil, err
	}
	return qm, nil
}

// conv2Out returns the block's conv2 output quantization (reconstructed
// from the stage table at build time; stored on the conv for layers that
// need the zero-point only).
func (b *qBlock) conv2Out() tensor.ActQuant {
	return b.conv2Q
}

// Config implements Engine.
func (q *QuantModel) Config() Config { return q.cfg }

// Precision implements Engine.
func (q *QuantModel) Precision() string { return "int8" }

// NewPredictor implements Engine.
func (q *QuantModel) NewPredictor() Predictor { return NewQuantSession(q) }

// ActQuants returns the model's per-stage activation quantization table
// (the checkpoint's scale/zero-point payload). The returned map is
// shared: callers must not mutate it.
func (q *QuantModel) ActQuants() map[string]tensor.ActQuant { return q.acts }

// WeightsF64 returns the retained master weights (shared, read-only).
func (q *QuantModel) WeightsF64() map[string][]float64 { return q.weights }
