// Scene inference — the paper's Fig 9 workflow (tile → filter → U-Net →
// stitch) behind a batch-oriented TilePredictor seam, so the offline CLI
// (cmd/seaice-infer) and the online service (internal/serve) share one
// code path while supplying different predictors (a local inference
// session vs. a micro-batching scheduler with a result cache).

package core

import (
	"fmt"

	"seaice/internal/dataset"
	"seaice/internal/raster"
	"seaice/internal/unet"
)

// TilePredictor classifies a batch of equally-sized RGB tiles. The
// returned slice is index-aligned with the input.
type TilePredictor interface {
	PredictTiles(tiles []*raster.RGB) ([]*raster.Labels, error)
}

// SessionPredictor is the local TilePredictor: an inference session over
// any precision engine (f64, f32, or int8), driven in fixed-size
// micro-batches. It is not safe for concurrent use (wrap it in a serve
// scheduler for that).
type SessionPredictor struct {
	pred     unet.Predictor
	maxBatch int
}

// DefaultInferenceBatch is the micro-batch size local inference uses —
// past ~16 tiles the per-layer amortization has flattened out.
const DefaultInferenceBatch = 16

// NewSessionPredictor mints a predictor session from e that predicts in
// batches of up to maxBatch tiles (<= 0 selects DefaultInferenceBatch).
func NewSessionPredictor(e unet.Engine, maxBatch int) *SessionPredictor {
	if maxBatch <= 0 {
		maxBatch = DefaultInferenceBatch
	}
	return &SessionPredictor{pred: e.NewPredictor(), maxBatch: maxBatch}
}

// PredictTiles implements TilePredictor.
func (p *SessionPredictor) PredictTiles(tiles []*raster.RGB) ([]*raster.Labels, error) {
	out := make([]*raster.Labels, 0, len(tiles))
	for i := 0; i < len(tiles); i += p.maxBatch {
		end := i + p.maxBatch
		if end > len(tiles) {
			end = len(tiles)
		}
		labels, err := p.pred.PredictTiles(tiles[i:end])
		if err != nil {
			return nil, err
		}
		out = append(out, labels...)
	}
	return out, nil
}

// InferScene runs the shared inference workflow on a full scene: apply
// the thin-cloud/shadow filter at scene scale, split into tiles, classify
// every tile through p, and stitch the predictions back to scene size.
func InferScene(p TilePredictor, sceneImg *raster.RGB, tileSize int, build dataset.BuildConfig) (*raster.Labels, error) {
	filtered := filterScene(sceneImg, build)
	return InferFilteredScene(p, filtered, tileSize)
}

// InferFilteredScene is InferScene minus the filter stage, for callers
// that already hold filtered imagery (or want raw classification).
func InferFilteredScene(p TilePredictor, img *raster.RGB, tileSize int) (*raster.Labels, error) {
	tiles, grid, err := raster.Split(img, tileSize, tileSize)
	if err != nil {
		return nil, err
	}
	imgs := make([]*raster.RGB, len(tiles))
	for i, t := range tiles {
		imgs[i] = t.Image
	}
	preds, err := p.PredictTiles(imgs)
	if err != nil {
		return nil, err
	}
	if len(preds) != len(imgs) {
		return nil, fmt.Errorf("core: predictor returned %d label maps for %d tiles", len(preds), len(imgs))
	}
	return raster.StitchLabels(preds, grid)
}

// Inference reproduces the paper's Fig 9 workflow on a full scene with a
// local batched session over e — the code path cmd/seaice-infer runs.
func Inference(e unet.Engine, sceneImg *raster.RGB, tileSize int, build dataset.BuildConfig) (*raster.Labels, error) {
	return InferScene(NewSessionPredictor(e, 0), sceneImg, tileSize, build)
}
