package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"seaice/internal/core"
	"seaice/internal/dataset"
	"seaice/internal/raster"
)

// CoordConfig sizes the cluster coordinator.
type CoordConfig struct {
	// TileSize is the cluster tile edge; every worker node must serve the
	// same size.
	TileSize int
	// Nodes lists worker addresses (host:port); node index is the hash
	// ring identity.
	Nodes []string
	// Build supplies the thin-cloud/shadow filter; the coordinator
	// filters once at scene scale, so workers classify pre-filtered
	// imagery.
	Build dataset.BuildConfig
	// HealthEvery is the health-probe period; 0 selects a 1s default.
	HealthEvery time.Duration
	// Timeout bounds each worker HTTP call; 0 selects 30s.
	Timeout time.Duration
	// ProbeTimeout bounds each health probe; 0 selects HealthEvery
	// capped at 2s. Probes deliberately do NOT share the request
	// timeout: a hung node must be detected within a probe period, not
	// after a full 30s request timeout.
	ProbeTimeout time.Duration
	// BreakerCooldown is how long an open circuit breaker waits before
	// admitting its single half-open trial; 0 selects 2×HealthEvery.
	BreakerCooldown time.Duration
	// HedgeAfter tunes tail-latency hedging of strip requests: 0 derives
	// the hedge delay from the observed p99 strip latency (hedging stays
	// off until enough samples accumulate), > 0 fixes the delay, < 0
	// disables hedging.
	HedgeAfter time.Duration
	// RetryBurst and RetryPerSec size the token-bucket retry budget
	// shared by reroutes and hedges; 0 selects 32 tokens refilled at
	// 8/s.
	RetryBurst  float64
	RetryPerSec float64
	// FallbackCache is the coordinator's stale-tile LRU capacity used
	// for degraded-mode serving; 0 selects 4096, < 0 disables.
	FallbackCache int
	// Logf receives routing events (breaker transitions, reroutes,
	// hedges); nil discards them.
	Logf func(format string, args ...any)
}

// CoordStats is the coordinator's /statz payload.
type CoordStats struct {
	Requests  int   `json:"requests"`
	Tiles     int   `json:"tiles"`
	Rerouted  int   `json:"rerouted_tiles"`
	NodesUp   int   `json:"nodes_up"`
	NodesDown []int `json:"nodes_down"`
	// Hedged counts strip requests that launched a hedge to the next
	// ring owner; HedgeWins counts hedges whose response arrived first.
	Hedged    int `json:"hedged_strips"`
	HedgeWins int `json:"hedge_wins"`
	// StaleTiles counts tiles answered from the coordinator's fallback
	// cache while their owners were down; PartialResponses counts
	// degraded 200s carrying the X-Seaice-Partial marker.
	StaleTiles       int `json:"stale_tiles"`
	PartialResponses int `json:"partial_responses"`
	// Breakers is the per-node circuit state ("closed" / "open" /
	// "half-open"), index-aligned with the node list; RetryTokens is the
	// remaining shared retry/hedge budget.
	Breakers    []string `json:"breakers"`
	RetryTokens float64  `json:"retry_tokens"`
}

// Coordinator fronts a cluster of worker serve nodes: it decodes and
// filters each scene once, shards its tiles across the nodes by
// consistent-hashing their content SHA-256 (so each distinct tile is
// classified — and cached — by exactly one node), ships each node's
// share as a single strip image, and stitches the returned label bytes
// back to scene size.
//
// Resilience layer: each node sits behind a circuit breaker fed by an
// EWMA failure detector (health probes and live request outcomes both
// count), so a sick node is routed around after its failures trip the
// breaker and re-admitted through a single half-open trial after a
// cooldown. Slow strips are hedged to the next consistent-hash owner
// after a p99-derived delay — first response wins, the loser's request
// is cancelled — with reroutes and hedges sharing one token-bucket retry
// budget so recovery can never amplify into a retry storm. Client
// deadlines (X-Seaice-Deadline-Ms) are honored: expired work is not
// dispatched, and each strip request forwards only the remaining budget.
// When tiles cannot be classified by any live node, the coordinator
// degrades instead of failing: stale results from its fallback tile
// cache, blank (water) tiles for the remainder, and an X-Seaice-Partial
// marker — a 503 only when it can produce nothing at all. Worker 429
// backpressure still propagates to the client verbatim.
type Coordinator struct {
	cfg         CoordConfig
	ring        *HashRing
	client      *http.Client
	probeClient *http.Client
	breakers    []*Breaker
	retry       *TokenBucket
	fallback    *Cache
	mux         *http.ServeMux

	mu        sync.Mutex
	requests  int
	tiles     int
	rerouted  int
	hedged    int
	hedgeWins int
	stale     int
	partials  int
	stripLat  []time.Duration // sliding window of strip round-trip latencies

	stop chan struct{}
	wg   sync.WaitGroup
}

// stripLatWindow bounds the hedge-delay latency sample window, and
// hedgeMinSamples is how many samples must accumulate before auto
// hedging arms (a cold coordinator must not hedge off a garbage
// estimate).
const (
	stripLatWindow  = 256
	hedgeMinSamples = 16
	hedgeFloor      = 25 * time.Millisecond
)

// NewCoordinator validates cfg and starts the health loop.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if cfg.TileSize < 1 {
		return nil, fmt.Errorf("serve: coordinator tile size must be ≥1, got %d", cfg.TileSize)
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("serve: coordinator needs ≥1 worker node")
	}
	if cfg.HealthEvery <= 0 {
		cfg.HealthEvery = time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.HealthEvery
		if cfg.ProbeTimeout > 2*time.Second {
			cfg.ProbeTimeout = 2 * time.Second
		}
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * cfg.HealthEvery
	}
	if cfg.RetryBurst <= 0 {
		cfg.RetryBurst = 32
	}
	if cfg.RetryPerSec <= 0 {
		cfg.RetryPerSec = 8
	}
	if cfg.FallbackCache == 0 {
		cfg.FallbackCache = 4096
	}
	ring, err := NewHashRing(len(cfg.Nodes))
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:         cfg,
		ring:        ring,
		client:      &http.Client{Timeout: cfg.Timeout},
		probeClient: &http.Client{Timeout: cfg.ProbeTimeout},
		breakers:    make([]*Breaker, len(cfg.Nodes)),
		retry:       NewTokenBucket(cfg.RetryBurst, cfg.RetryPerSec, nil),
		fallback:    NewCache(max(cfg.FallbackCache, 0)),
		stop:        make(chan struct{}),
	}
	for i := range c.breakers {
		c.breakers[i] = NewBreaker(cfg.BreakerCooldown, nil)
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("/classify", c.handleClassify)
	c.mux.HandleFunc("/healthz", c.handleHealthz)
	c.mux.HandleFunc("/statz", c.handleStatz)
	c.wg.Add(1)
	go c.healthLoop()
	return c, nil
}

// Handler returns the coordinator's HTTP handler tree.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Close stops the health loop.
func (c *Coordinator) Close() {
	close(c.stop)
	c.wg.Wait()
}

// Stats snapshots the coordinator's counters.
func (c *Coordinator) Stats() CoordStats {
	c.mu.Lock()
	s := CoordStats{
		Requests: c.requests, Tiles: c.tiles, Rerouted: c.rerouted,
		Hedged: c.hedged, HedgeWins: c.hedgeWins,
		StaleTiles: c.stale, PartialResponses: c.partials,
		NodesDown: []int{},
	}
	c.mu.Unlock()
	s.RetryTokens = c.retry.Tokens()
	s.Breakers = make([]string, len(c.breakers))
	for node, b := range c.breakers {
		st := b.State()
		s.Breakers[node] = st.String()
		if st == BreakerClosed {
			s.NodesUp++
		} else {
			s.NodesDown = append(s.NodesDown, node)
		}
	}
	return s
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// isDown reports whether the node's breaker is anything but closed (the
// coordinator's "not fully trusted" view, used by tests and /healthz).
func (c *Coordinator) isDown(node int) bool {
	return c.breakers[node].State() != BreakerClosed
}

// available is the routing view: nodes whose breaker admits traffic
// right now (closed, or probe-able).
func (c *Coordinator) available(node int) bool {
	return c.breakers[node].Available()
}

// record feeds one observed outcome into a node's breaker, logging state
// transitions.
func (c *Coordinator) record(node int, ok bool) {
	before := c.breakers[node].State()
	c.breakers[node].Record(ok)
	after := c.breakers[node].State()
	if before != after {
		c.logf("serve: node %d (%s) breaker %s → %s", node, c.cfg.Nodes[node], before, after)
	}
}

func (c *Coordinator) allUnavailable() bool {
	for node := range c.breakers {
		if c.available(node) {
			return false
		}
	}
	return true
}

// healthLoop probes every node's /healthz each period and feeds the
// outcome into its breaker: probe failures accumulate in the EWMA
// detector exactly like request failures, and a probe success closes the
// breaker, bringing the node back into rotation on the next request.
func (c *Coordinator) healthLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.HealthEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			for node := range c.cfg.Nodes {
				c.record(node, c.probe(node))
			}
		}
	}
}

// probe reports whether a node answers its health check. Probes use
// their own short-timeout client: sharing the request client's 30s
// timeout would let one hung node stay "up" for 30s per probe.
func (c *Coordinator) probe(node int) bool {
	resp, err := c.probeClient.Get("http://" + c.cfg.Nodes[node] + "/healthz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// workerReject is a worker response the coordinator propagates to the
// client unchanged (backpressure and input errors), as opposed to a node
// failure it reroutes around.
type workerReject struct {
	status     int
	retryAfter string
	body       []byte
	contentTyp string
}

// partialInfo summarizes a degraded-mode response for the
// X-Seaice-Partial header.
type partialInfo struct {
	Missing int `json:"missing"`
	Stale   int `json:"stale"`
	Total   int `json:"total"`
}

// handleClassify implements the sharded POST /classify: decode, filter
// once, split, route tile groups to their hash-ring owners, stitch.
func (c *Coordinator) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a PNG to /classify", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	model := r.URL.Query().Get("model")
	img, errStatus, err := decodeSceneBody(r, c.cfg.TileSize)
	if err != nil {
		http.Error(w, err.Error(), errStatus)
		return
	}
	deadline, err := parseDeadline(r, start)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	filtered := core.FilterScene(img, c.cfg.Build)
	tiles, grid, err := raster.Split(filtered, c.cfg.TileSize, c.cfg.TileSize)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	preds, reject, partial, err := c.classifyTiles(model, tiles, deadline)
	if reject != nil {
		if reject.retryAfter != "" {
			w.Header().Set("Retry-After", reject.retryAfter)
		}
		if reject.contentTyp != "" {
			w.Header().Set("Content-Type", reject.contentTyp)
		}
		w.WriteHeader(reject.status)
		w.Write(reject.body)
		return
	}
	if err != nil {
		status := http.StatusServiceUnavailable
		if errors.Is(err, ErrDeadlineExpired) {
			status = http.StatusGatewayTimeout
		}
		http.Error(w, err.Error(), status)
		return
	}
	labels, err := raster.StitchLabels(preds, grid)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	c.mu.Lock()
	c.requests++
	c.tiles += len(tiles)
	if partial != nil {
		c.partials++
		c.stale += partial.Stale
	}
	c.mu.Unlock()

	counts := labels.Counts()
	total := float64(len(labels.Pix))
	stats := classifyStats{
		Model:      model,
		Tiles:      len(tiles),
		Water:      float64(counts[raster.ClassWater]) / total,
		ThinIce:    float64(counts[raster.ClassThinIce]) / total,
		ThickIce:   float64(counts[raster.ClassThickIce]) / total,
		ElapsedMS:  float64(time.Since(start)) / float64(time.Millisecond),
		TileSize:   c.cfg.TileSize,
		FilterUsed: true,
	}
	hdr, _ := json.Marshal(stats)
	var buf bytes.Buffer
	if err := labels.Render().EncodePNG(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	w.Header().Set("X-Seaice-Stats", string(hdr))
	if partial != nil {
		ph, _ := json.Marshal(partial)
		w.Header().Set(PartialHeader, string(ph))
	}
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// classifyTiles routes every tile to its consistent-hash owner and
// collects predictions index-aligned with tiles. Node failures feed the
// breakers and the failed tiles reroute clockwise to the next available
// node — each reroute round spending one retry-budget token — and tiles
// that exhaust nodes, budget, or deadline degrade: stale fallback-cache
// answers where available, blank tiles otherwise, summarized in the
// returned partialInfo (nil for a complete response). The error return
// is non-nil only when not a single tile could be answered.
func (c *Coordinator) classifyTiles(model string, tiles []raster.Tile, deadline time.Time) ([]*raster.Labels, *workerReject, *partialInfo, error) {
	preds := make([]*raster.Labels, len(tiles))
	pending := make([]int, len(tiles))
	for i := range pending {
		pending[i] = i
	}
	var lost []int // tiles past rerouting: resolved by the degraded path
	deadlineHit := false
	for round := 0; round <= len(c.cfg.Nodes); round++ {
		if len(pending) == 0 {
			break
		}
		if c.allUnavailable() {
			lost = append(lost, pending...)
			pending = nil
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			// The client's budget is gone: dispatching more strips would
			// compute work nobody is waiting for.
			deadlineHit = true
			lost = append(lost, pending...)
			pending = nil
			break
		}
		if round > 0 {
			// Rerouting is a retry: it spends budget. An empty bucket
			// degrades the leftover tiles instead of amplifying load.
			if !c.retry.Take() {
				c.logf("serve: retry budget exhausted, degrading %d tiles", len(pending))
				lost = append(lost, pending...)
				pending = nil
				break
			}
		}
		// Group the pending tiles by their current available owner.
		groups := map[int][]int{}
		for _, i := range pending {
			key := TileKey(model, tiles[i].Image)
			node := c.ring.OwnerAvoiding(key, func(n int) bool { return !c.available(n) })
			if round > 0 {
				c.mu.Lock()
				c.rerouted++
				c.mu.Unlock()
			}
			groups[node] = append(groups[node], i)
		}
		type result struct {
			node   int
			idxs   []int
			labels []*raster.Labels
			reject *workerReject
			err    error
		}
		results := make(chan result, len(groups))
		for node, idxs := range groups {
			go func(node int, idxs []int) {
				labels, reject, err := c.classifyOnNode(node, model, tiles, idxs, deadline)
				results <- result{node, idxs, labels, reject, err}
			}(node, idxs)
		}
		pending = pending[:0]
		var reject *workerReject
		for range groups {
			res := <-results
			switch {
			case res.reject != nil:
				reject = res.reject
			case res.err != nil:
				// Node failure (the strip layer already fed the breaker):
				// retry these tiles on the next available owner.
				c.logf("serve: node %d (%s) failed, rerouting %d tiles: %v",
					res.node, c.cfg.Nodes[res.node], len(res.idxs), res.err)
				pending = append(pending, res.idxs...)
			default:
				for j, i := range res.idxs {
					preds[i] = res.labels[j]
				}
			}
		}
		if reject != nil {
			return nil, reject, nil, nil
		}
	}
	lost = append(lost, pending...)
	if len(lost) == 0 {
		return preds, nil, nil, nil
	}

	// Degraded mode: answer what we can from the fallback cache (stale
	// is better than nothing), blank the rest, and mark the response
	// partial — a blanket 503 only when nothing at all was answerable.
	sort.Ints(lost)
	info := &partialInfo{Total: len(tiles)}
	for _, i := range lost {
		key := TileKey(model, tiles[i].Image)
		if labels, ok := c.fallback.Get(key); ok {
			preds[i] = labels
			info.Stale++
		} else {
			preds[i] = raster.NewLabels(c.cfg.TileSize, c.cfg.TileSize)
			info.Missing++
		}
	}
	if info.Missing == len(tiles) {
		if deadlineHit {
			return nil, nil, nil, fmt.Errorf("serve: nothing servable before the deadline: %w", ErrDeadlineExpired)
		}
		return nil, nil, nil, fmt.Errorf("serve: no live worker nodes and no cached fallback")
	}
	c.logf("serve: degraded response: %d stale, %d missing of %d tiles", info.Stale, info.Missing, info.Total)
	return preds, nil, info, nil
}

// classifyOnNode ships one node's tile share as vertical strip images
// (tileSize wide, k·tileSize tall — raster.Split on a strip yields
// exactly those k tiles in order) and slices the returned raw label
// bytes back into per-tile label maps. Strips are capped so their height
// stays inside the worker's accepted scene dimensions.
func (c *Coordinator) classifyOnNode(node int, model string, tiles []raster.Tile, idxs []int, deadline time.Time) ([]*raster.Labels, *workerReject, error) {
	stripMax := maxSceneDim / c.cfg.TileSize
	out := make([]*raster.Labels, 0, len(idxs))
	for lo := 0; lo < len(idxs); lo += stripMax {
		hi := lo + stripMax
		if hi > len(idxs) {
			hi = len(idxs)
		}
		labels, reject, err := c.classifyStripHedged(node, model, tiles, idxs[lo:hi], deadline)
		if reject != nil || err != nil {
			return nil, reject, err
		}
		out = append(out, labels...)
	}
	return out, nil, nil
}

// errNodeBusy reports a node whose half-open breaker already has its
// trial request in flight — not a failure, but this strip must go
// elsewhere.
var errNodeBusy = errors.New("serve: node half-open, trial already in flight")

// stripResult is one strip attempt's outcome, tagged with the node that
// served it.
type stripResult struct {
	node   int
	labels []*raster.Labels
	reject *workerReject
	err    error
}

// classifyStripHedged runs one strip against its owner with tail-latency
// hedging: if the primary has not answered within the hedge delay (p99
// of recent strip latencies, or CoordConfig.HedgeAfter), the same strip
// is raced against the next available consistent-hash owner — spending
// one retry-budget token — and the first response wins while the loser's
// HTTP request is cancelled. Every attempt's outcome feeds its node's
// breaker; a cancelled loser feeds nothing (no verdict).
func (c *Coordinator) classifyStripHedged(node int, model string, tiles []raster.Tile, idxs []int, deadline time.Time) ([]*raster.Labels, *workerReject, error) {
	if !c.breakers[node].TryProbe() {
		return nil, nil, errNodeBusy
	}
	ctx := context.Background()
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	primaryCtx, cancelPrimary := context.WithCancel(ctx)
	defer cancelPrimary()
	results := make(chan stripResult, 2)
	go func() {
		labels, reject, err := c.classifyStrip(primaryCtx, node, model, tiles, idxs, deadline)
		results <- stripResult{node, labels, reject, err}
	}()

	var hedgeC <-chan time.Time
	if d, ok := c.hedgeDelay(); ok {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}

	// settle records or releases the attempt's breaker claim: a
	// cancelled loser is no verdict on the node's health.
	settle := func(r stripResult) {
		if r.err != nil && errors.Is(r.err, context.Canceled) {
			c.breakers[r.node].Release()
			return
		}
		c.record(r.node, r.err == nil)
	}

	inflight := 1
	hedgedTo := -1
	// At most one hedge ever fires (hedgeC is nilled after), so its
	// context can be created up front and cancelled unconditionally.
	hedgeCtx, cancelHedge := context.WithCancel(ctx)
	defer cancelHedge()
	var firstErr error
	for {
		select {
		case r := <-results:
			inflight--
			settle(r)
			if r.err == nil {
				// First response wins (a worker reject is a response: the
				// node is alive and its verdict propagates).
				if hedgedTo >= 0 && r.node == hedgedTo {
					c.mu.Lock()
					c.hedgeWins++
					c.mu.Unlock()
				}
				if inflight > 0 {
					// Cancel the loser and settle it off-path so its
					// breaker slot cannot leak.
					cancelPrimary()
					cancelHedge()
					go func() { settle(<-results) }()
				}
				return r.labels, r.reject, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if inflight == 0 {
				return nil, nil, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			alt := c.hedgeTarget(node, model, tiles, idxs)
			if alt < 0 || !c.retry.Take() || !c.breakers[alt].TryProbe() {
				continue
			}
			c.mu.Lock()
			c.hedged++
			c.mu.Unlock()
			c.logf("serve: hedging strip of %d tiles from node %d to node %d", len(idxs), node, alt)
			hedgedTo = alt
			inflight++
			go func(alt int) {
				labels, reject, err := c.classifyStrip(hedgeCtx, alt, model, tiles, idxs, deadline)
				results <- stripResult{alt, labels, reject, err}
			}(alt)
		}
	}
}

// hedgeTarget picks the next available ring owner after the primary for
// this strip, or -1 when no distinct node qualifies.
func (c *Coordinator) hedgeTarget(primary int, model string, tiles []raster.Tile, idxs []int) int {
	if len(c.cfg.Nodes) < 2 || len(idxs) == 0 {
		return -1
	}
	key := TileKey(model, tiles[idxs[0]].Image)
	alt := c.ring.OwnerAvoiding(key, func(n int) bool {
		return n == primary || !c.available(n)
	})
	if alt == primary || !c.available(alt) {
		return -1
	}
	return alt
}

// hedgeDelay reports the current hedge trigger delay and whether hedging
// is armed.
func (c *Coordinator) hedgeDelay() (time.Duration, bool) {
	if c.cfg.HedgeAfter < 0 {
		return 0, false
	}
	if c.cfg.HedgeAfter > 0 {
		return c.cfg.HedgeAfter, true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.stripLat) < hedgeMinSamples {
		return 0, false
	}
	window := make([]time.Duration, len(c.stripLat))
	copy(window, c.stripLat)
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	d := 2 * window[percentileIndex(len(window), 0.99)]
	if d < hedgeFloor {
		d = hedgeFloor
	}
	return d, true
}

// observeStripLatency slides one successful strip round trip into the
// hedge-delay window.
func (c *Coordinator) observeStripLatency(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stripLat = append(c.stripLat, d)
	if len(c.stripLat) > stripLatWindow {
		c.stripLat = c.stripLat[len(c.stripLat)-stripLatWindow:]
	}
}

// classifyStrip runs one strip-sized HTTP round trip against a node,
// forwarding the request's remaining deadline budget, and writes each
// returned tile into the fallback cache for degraded-mode serving.
func (c *Coordinator) classifyStrip(ctx context.Context, node int, model string, tiles []raster.Tile, idxs []int, deadline time.Time) ([]*raster.Labels, *workerReject, error) {
	ts := c.cfg.TileSize
	strip := raster.NewRGB(ts, ts*len(idxs))
	tilePix := 3 * ts * ts
	for j, i := range idxs {
		copy(strip.Pix[j*tilePix:(j+1)*tilePix], tiles[i].Image.Pix)
	}
	var body bytes.Buffer
	if err := strip.EncodePNG(&body); err != nil {
		return nil, nil, err
	}
	url := "http://" + c.cfg.Nodes[node] + "/classify?filtered=1&format=raw"
	if model != "" {
		url += "&model=" + model
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, &body)
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "image/png")
	setDeadlineHeader(req.Header, deadline, time.Now())
	start := time.Now()
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode >= 500:
		// Treat server-side failure like a dead node: reroute.
		return nil, nil, fmt.Errorf("serve: node %d returned %s", node, resp.Status)
	default:
		// 4xx (backpressure, bad model, …) propagates to the client.
		return nil, &workerReject{
			status:     resp.StatusCode,
			retryAfter: resp.Header.Get("Retry-After"),
			body:       payload,
			contentTyp: resp.Header.Get("Content-Type"),
		}, nil
	}
	if len(payload) != ts*ts*len(idxs) {
		return nil, nil, fmt.Errorf("serve: node %d returned %d label bytes, want %d",
			node, len(payload), ts*ts*len(idxs))
	}
	c.observeStripLatency(time.Since(start))
	labels := make([]*raster.Labels, len(idxs))
	for j := range idxs {
		l := raster.NewLabels(ts, ts)
		for k, b := range payload[j*ts*ts : (j+1)*ts*ts] {
			if b >= raster.NumClasses {
				return nil, nil, fmt.Errorf("serve: node %d returned invalid class %d", node, b)
			}
			l.Pix[k] = raster.Class(b)
		}
		labels[j] = l
		c.fallback.Put(TileKey(model, tiles[idxs[j]].Image), l)
	}
	return labels, nil, nil
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s := c.Stats()
	status := "ok"
	w.Header().Set("Content-Type", "application/json")
	if s.NodesUp == 0 {
		status = "degraded"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(map[string]any{
		"status":     status,
		"role":       "coordinator",
		"nodes":      c.cfg.Nodes,
		"nodes_up":   s.NodesUp,
		"nodes_down": s.NodesDown,
		"breakers":   s.Breakers,
	})
}

func (c *Coordinator) handleStatz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(c.Stats())
}
