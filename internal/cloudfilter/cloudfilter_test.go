package cloudfilter

import (
	"testing"

	"seaice/internal/imgproc"
	"seaice/internal/raster"
	"seaice/internal/scene"
)

// TestResultFieldsPopulated: the filter must return all its estimates
// with scene dimensions.
func TestResultFieldsPopulated(t *testing.T) {
	cfg := scene.DefaultConfig(201)
	cfg.W, cfg.H = 128, 128
	sc, _ := scene.Generate(cfg)
	res := FilterDefault(sc.Image)
	if res.Image == nil || res.CloudMask == nil || res.Opacity == nil || res.Shadow == nil {
		t.Fatal("result fields missing")
	}
	if res.Image.W != 128 || res.CloudMask.W != 128 || res.Opacity.W != 128 {
		t.Fatal("result sizes wrong")
	}
	for i, a := range res.Opacity.Pix {
		if a < 0 || a > DefaultConfig().MaxOpacity+1e-9 {
			t.Fatalf("opacity[%d] = %f outside [0,max]", i, a)
		}
	}
	for i, s := range res.Shadow.Pix {
		if s < 0 || s > DefaultConfig().MaxShadow+1e-9 {
			t.Fatalf("shadow[%d] = %f outside [0,max]", i, s)
		}
	}
}

// TestCloudMaskCoversTruth: the estimated disturbance mask must cover
// most truly disturbed pixels (high recall — missed clouds stay
// uncorrected) while not ballooning far past the true disturbed area
// (the estimate is deliberately dilated, so moderate over-detection is
// expected and harmless).
func TestCloudMaskCoversTruth(t *testing.T) {
	cfg := scene.DefaultConfig(42)
	cfg.W, cfg.H = 512, 512
	sc, _ := scene.Generate(cfg)
	res := FilterDefault(sc.Image)

	est := imgproc.CountNonZero(res.CloudMask)
	truth := imgproc.CountNonZero(sc.CloudMask)
	if est == 0 {
		t.Fatal("no disturbance detected on a cloudy scene")
	}
	inter := 0
	for i := range res.CloudMask.Pix {
		if res.CloudMask.Pix[i] != 0 && sc.CloudMask.Pix[i] != 0 {
			inter++
		}
	}
	recall := float64(inter) / float64(truth)
	ratio := float64(est) / float64(truth)
	t.Logf("cloud-mask recall %.3f, detected/true area ratio %.2f", recall, ratio)
	if recall < 0.70 {
		t.Fatalf("cloud-mask recall %.3f < 0.70", recall)
	}
	if ratio > 1.8 {
		t.Fatalf("mask %.2f× larger than the true disturbed area", ratio)
	}
}

// TestFilterDeterministic: same input, same output.
func TestFilterDeterministic(t *testing.T) {
	cfg := scene.DefaultConfig(202)
	cfg.W, cfg.H = 128, 128
	sc, _ := scene.Generate(cfg)
	a := FilterDefault(sc.Image)
	b := FilterDefault(sc.Image)
	for i := range a.Image.Pix {
		if a.Image.Pix[i] != b.Image.Pix[i] {
			t.Fatal("filter not deterministic")
		}
	}
}

// TestFilterDoesNotMutateInput.
func TestFilterDoesNotMutateInput(t *testing.T) {
	cfg := scene.DefaultConfig(203)
	cfg.W, cfg.H = 96, 96
	sc, _ := scene.Generate(cfg)
	before := append([]uint8(nil), sc.Image.Pix...)
	FilterDefault(sc.Image)
	for i := range before {
		if sc.Image.Pix[i] != before[i] {
			t.Fatal("filter mutated its input")
		}
	}
}

// TestDilateFloatQuantization: the helper's quantized max must bound the
// true values from above within one quantization step.
func TestDilateFloatQuantization(t *testing.T) {
	f := raster.NewFloat(8, 8)
	f.Set(3, 3, 0.4)
	d := dilateFloat(f, 2)
	if d.At(3, 3) < 0.4-1.0/500 || d.At(3, 3) > 0.4+1.0/500 {
		t.Fatalf("peak value %f drifted from 0.4", d.At(3, 3))
	}
	if d.At(5, 5) < 0.4-1.0/500 {
		t.Fatalf("dilation did not spread: %f", d.At(5, 5))
	}
	if d.At(7, 7) != 0 {
		t.Fatalf("dilation spread too far: %f", d.At(7, 7))
	}
}

// TestSmoothFloatConservesMassApprox: Gaussian smoothing of a constant
// field is the identity.
func TestSmoothFloatConstant(t *testing.T) {
	f := raster.NewFloat(16, 16)
	for i := range f.Pix {
		f.Pix[i] = 0.3
	}
	s := smoothFloat(f, 3)
	for i, v := range s.Pix {
		if v < 0.299 || v > 0.301 {
			t.Fatalf("constant field changed at %d: %f", i, v)
		}
	}
}
