package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"seaice/internal/noise"
)

func TestNewShapeAndLen(t *testing.T) {
	x := New[float64](2, 3, 4)
	if x.Len() != 24 || x.Dim(1) != 3 {
		t.Fatalf("shape bookkeeping wrong: %v len %d", x.Shape, x.Len())
	}
}

func TestNewRejectsBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero dimension must panic")
		}
	}()
	New[float64](2, 0, 3)
}

func TestFromDataValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	FromData([]float64{1, 2, 3}, 2, 2)
}

func TestReshapeSharesData(t *testing.T) {
	x := New[float64](2, 6)
	y := x.Reshape(3, 4)
	y.Data[0] = 42
	if x.Data[0] != 42 {
		t.Fatal("reshape must alias the data")
	}
}

func TestCloneAndZero(t *testing.T) {
	x := New[float64](4)
	x.Data[2] = 7
	c := x.Clone()
	x.Zero()
	if c.Data[2] != 7 || x.Data[2] != 0 {
		t.Fatal("clone/zero interaction wrong")
	}
}

func TestAddScale(t *testing.T) {
	a := FromData([]float64{1, 2}, 2)
	b := FromData([]float64{10, 20}, 2)
	a.AddInPlace(b)
	a.Scale(2)
	if a.Data[0] != 22 || a.Data[1] != 44 {
		t.Fatalf("got %v", a.Data)
	}
}

func matmulRef(a, b *F64) *F64 {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New[float64](m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for kk := 0; kk < k; kk++ {
				s += a.Data[i*k+kk] * b.Data[kk*n+j]
			}
			c.Data[i*n+j] = s
		}
	}
	return c
}

func randT(seed uint64, shape ...int) *F64 {
	x := New[float64](shape...)
	x.FillRandn(noise.NewRNG(seed, 1), 1)
	return x
}

// TestMatMulVariantsAgree: the three multiply kernels must agree with the
// naive reference on random shapes.
func TestMatMulVariantsAgree(t *testing.T) {
	f := func(seed uint64, mRaw, kRaw, nRaw uint8) bool {
		m, k, n := int(mRaw)%7+1, int(kRaw)%7+1, int(nRaw)%7+1
		a := randT(seed, m, k)
		b := randT(seed+1, k, n)
		want := matmulRef(a, b)

		c1 := MatMul(a, b)
		// Aᵀ form: build at (k×m) with at[kk][i] = a[i][kk]
		at := New[float64](k, m)
		for i := 0; i < m; i++ {
			for kk := 0; kk < k; kk++ {
				at.Data[kk*m+i] = a.Data[i*k+kk]
			}
		}
		c2 := MatMulATB(at, b)
		// Bᵀ form
		bt := New[float64](n, k)
		for kk := 0; kk < k; kk++ {
			for j := 0; j < n; j++ {
				bt.Data[j*k+kk] = b.Data[kk*n+j]
			}
		}
		c3 := MatMulABT(a, bt)

		for i := range want.Data {
			if math.Abs(c1.Data[i]-want.Data[i]) > 1e-9 ||
				math.Abs(c2.Data[i]-want.Data[i]) > 1e-9 ||
				math.Abs(c3.Data[i]-want.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch must panic")
		}
	}()
	MatMul(New[float64](2, 3), New[float64](4, 2))
}

// TestIm2ColIdentityKernel: with a 1×1 kernel, im2col is a reshape.
func TestIm2ColIdentityKernel(t *testing.T) {
	x := randT(5, 2, 3, 4, 4)
	cols := Im2Col(x, 1, 1, 1, 0)
	if cols.Shape[0] != 3 || cols.Shape[1] != 2*16 {
		t.Fatalf("cols shape %v", cols.Shape)
	}
	// column j of channel c equals x at that position
	for img := 0; img < 2; img++ {
		for c := 0; c < 3; c++ {
			for p := 0; p < 16; p++ {
				got := cols.Data[c*32+img*16+p]
				want := x.Data[(img*3+c)*16+p]
				if got != want {
					t.Fatalf("im2col mismatch at img %d c %d p %d", img, c, p)
				}
			}
		}
	}
}

// TestIm2ColConvMatchesDirect: weights × im2col must equal a directly
// computed convolution.
func TestIm2ColConvMatchesDirect(t *testing.T) {
	x := randT(6, 1, 2, 5, 5)
	w := randT(7, 3, 2*3*3) // 3 output channels, 3×3 kernel
	cols := Im2Col(x, 3, 3, 1, 1)
	out := MatMul(w, cols) // (3, N*5*5)

	// direct convolution
	for oc := 0; oc < 3; oc++ {
		for oy := 0; oy < 5; oy++ {
			for ox := 0; ox < 5; ox++ {
				sum := 0.0
				for c := 0; c < 2; c++ {
					for ky := 0; ky < 3; ky++ {
						for kx := 0; kx < 3; kx++ {
							iy, ix := oy+ky-1, ox+kx-1
							if iy < 0 || iy >= 5 || ix < 0 || ix >= 5 {
								continue
							}
							sum += w.Data[oc*18+(c*3+ky)*3+kx] * x.Data[(c*5+iy)*5+ix]
						}
					}
				}
				got := out.Data[oc*25+oy*5+ox]
				if math.Abs(got-sum) > 1e-9 {
					t.Fatalf("conv mismatch at oc=%d (%d,%d): %g vs %g", oc, ox, oy, got, sum)
				}
			}
		}
	}
}

// TestCol2ImAdjoint: <Im2Col(x), y> == <x, Col2Im(y)> — the defining
// property of the adjoint, which is exactly what backprop requires.
func TestCol2ImAdjoint(t *testing.T) {
	const n, c, h, w, k, pad = 2, 2, 4, 4, 3, 1
	x := randT(8, n, c, h, w)
	cols := Im2Col(x, k, k, 1, pad)
	y := randT(9, cols.Shape[0], cols.Shape[1])

	// <Im2Col(x), y>
	lhs := 0.0
	for i := range cols.Data {
		lhs += cols.Data[i] * y.Data[i]
	}
	// <x, Col2Im(y)>
	back := Col2Im(y, n, c, h, w, k, k, 1, pad)
	rhs := 0.0
	for i := range x.Data {
		rhs += x.Data[i] * back.Data[i]
	}
	if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
		t.Fatalf("adjoint identity violated: %g vs %g", lhs, rhs)
	}
}

func TestIm2ColStride2(t *testing.T) {
	x := randT(10, 1, 1, 6, 6)
	cols := Im2Col(x, 2, 2, 2, 0)
	if cols.Shape[0] != 4 || cols.Shape[1] != 9 {
		t.Fatalf("stride-2 cols shape %v, want [4 9]", cols.Shape)
	}
}
