package ddp

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"seaice/internal/nn"
	"seaice/internal/noise"
)

// Snapshot is the exact mid-epoch training state at a global-step
// boundary: model weights (stored float64 — exact for either compute
// precision), the full Adam state (moments and, for mixed precision, the
// float64 master weights), each rank's RNG-stream position (dropout
// noise), and the batch cursor. Restoring a snapshot and re-running the
// remaining steps reproduces the uninterrupted run bit for bit, because
// every step is a deterministic function of this state and the seeded
// batch schedule — the recovery invariant the chaos tests assert.
type Snapshot struct {
	// Precision is "float32" or "float64"; a snapshot restores only into
	// the instantiation that wrote it (moments and masters are exact
	// either way, but cross-precision resume would not be bit-identical
	// to either pure run).
	Precision string
	// Key fingerprints the model configuration and training topology;
	// Restore rejects a mismatch.
	Key string
	// Data fingerprints the sample set (count, dimensions, pixel and
	// label content): resuming against different training data cannot be
	// bit-identical, so Fit rejects a mismatch.
	Data string
	// Step is the batch cursor: the number of completed global steps.
	Step int
	// Weights maps parameter name to float64 values (rank-synchronized,
	// so one copy covers every replica).
	Weights map[string][]float64
	// Opt is the optimizer state (identical across ranks).
	Opt nn.AdamState
	// RNG is each rank's generator position (ranks have distinct dropout
	// streams).
	RNG []noise.RNGState
}

// snapMagic heads on-disk snapshot files; the trailing byte is the
// format version. Version 4 is the checksummed layout:
//
//	v4 := [magic:16][bodyLen:8 BE][gob body][crc32c(body):4 BE]
//
// The CRC32C (Castagnoli) trailer covers the gob body, so a flipped bit
// anywhere in the state fails verification at load, and the explicit
// length makes a torn (truncated) write detectable before gob ever runs.
const snapMagic = "SEAICE-DDP-SNAP\x04"

// ErrSnapshotMismatch reports a snapshot whose key or precision does not
// match the trainer it is being restored into.
var ErrSnapshotMismatch = errors.New("ddp: snapshot does not match trainer configuration")

// ErrBadSnapshot reports a stream that is not a snapshot at all (missing
// or unknown header).
var ErrBadSnapshot = errors.New("ddp: malformed snapshot")

// ErrCorruptSnapshot reports a snapshot whose header is valid but whose
// body fails integrity verification — truncation, checksum mismatch, or
// inconsistent decoded contents. Loaders fall back to an older rotation
// entry instead of resuming from silent garbage.
var ErrCorruptSnapshot = errors.New("ddp: corrupt snapshot")

// DefaultSnapshotKeep is the snapshot rotation depth when the caller
// does not choose one: the newest snapshot plus one verified-good
// fallback entry.
const DefaultSnapshotKeep = 2

// Write encodes the snapshot in the checksummed v4 layout.
func (s *Snapshot) Write(w io.Writer) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(s); err != nil {
		return fmt.Errorf("ddp: save snapshot: %w", err)
	}
	if _, err := io.WriteString(w, snapMagic); err != nil {
		return fmt.Errorf("ddp: save snapshot: %w", err)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(body.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("ddp: save snapshot: %w", err)
	}
	if _, err := w.Write(body.Bytes()); err != nil {
		return fmt.Errorf("ddp: save snapshot: %w", err)
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.Checksum(body.Bytes(), snapTable))
	if _, err := w.Write(crc[:]); err != nil {
		return fmt.Errorf("ddp: save snapshot: %w", err)
	}
	return nil
}

// snapTable is the CRC32C polynomial table for checkpoint checksums.
var snapTable = crc32.MakeTable(crc32.Castagnoli)

// rotationEntry names the i-th snapshot rotation file: the live path for
// i = 0, "path.1", "path.2", … for older generations.
func rotationEntry(path string, i int) string {
	if i == 0 {
		return path
	}
	return fmt.Sprintf("%s.%d", path, i)
}

// SaveSnapshotFile durably writes the snapshot and rotates the previous
// generations, keeping the newest `keep` entries (path, path.1, …;
// keep <= 1 keeps only path). The write is atomic (temp file + rename)
// and fsynced — both the file before rename and the directory after —
// so neither a crash mid-write nor a power cut after rename can leave
// the rotation without a durable good entry.
func SaveSnapshotFile(path string, s *Snapshot, keep int) error {
	return saveSnapshotFile(path, s, keep, false)
}

// saveSnapshotFile is SaveSnapshotFile plus the torn-write fault hook:
// torn truncates the file mid-body after rotation, simulating a crash
// between write and fsync — the corruption LoadSnapshotFallback must
// catch and skip.
func saveSnapshotFile(path string, s *Snapshot, keep int, torn bool) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ddp: save snapshot: %w", err)
	}
	// Reap orphaned temp files from earlier interrupted writes of this
	// same snapshot path (the writer is serial per path, so anything
	// matching the pattern is stale).
	pattern := filepath.Join(dir, "."+filepath.Base(path)+"-*.tmp")
	if stale, err := filepath.Glob(pattern); err == nil {
		for _, p := range stale {
			os.Remove(p)
		}
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*.tmp")
	if err != nil {
		return fmt.Errorf("ddp: save snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := s.Write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if torn {
		if st, err := tmp.Stat(); err == nil {
			tmp.Truncate(st.Size() / 2)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ddp: save snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ddp: save snapshot: %w", err)
	}
	// Rotate the existing generations up one slot before the new file
	// takes the live name.
	if keep < 1 {
		keep = 1
	}
	os.Remove(rotationEntry(path, keep-1))
	for i := keep - 1; i >= 2; i-- {
		os.Rename(rotationEntry(path, i-1), rotationEntry(path, i))
	}
	if keep > 1 {
		os.Rename(path, rotationEntry(path, 1))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ddp: save snapshot: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ddp: sync snapshot dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("ddp: sync snapshot dir: %w", err)
	}
	return nil
}

// ReadSnapshot decodes a snapshot stream, verifying the magic header,
// the explicit body length, and the CRC32C trailer before trusting a
// single decoded byte.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(snapMagic))
	if err != nil || string(head) != snapMagic {
		return nil, fmt.Errorf("%w: missing or truncated header", ErrBadSnapshot)
	}
	if _, err := br.Discard(len(snapMagic)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated length header", ErrCorruptSnapshot)
	}
	n := binary.BigEndian.Uint64(hdr[:])
	const maxSnapshot = 1 << 32 // corrupt lengths must not balloon memory
	if n == 0 || n > maxSnapshot {
		return nil, fmt.Errorf("%w: implausible body length %d", ErrCorruptSnapshot, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, fmt.Errorf("%w: truncated body (torn write?)", ErrCorruptSnapshot)
	}
	var crc [4]byte
	if _, err := io.ReadFull(br, crc[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated CRC trailer", ErrCorruptSnapshot)
	}
	want := binary.BigEndian.Uint32(crc[:])
	if got := crc32.Checksum(body, snapTable); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (got %08x, want %08x)", ErrCorruptSnapshot, got, want)
	}
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	if s.Step < 0 || len(s.RNG) == 0 || s.Weights == nil {
		return nil, fmt.Errorf("%w: inconsistent contents", ErrCorruptSnapshot)
	}
	return &s, nil
}

// LoadSnapshotFile reads a snapshot file written by SaveSnapshotFile,
// strictly: a corrupt file is an error, with no rotation fallback.
func LoadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ddp: load snapshot: %w", err)
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// LoadSnapshotFallback loads the newest verifiable snapshot from the
// rotation (path, path.1, … up to keep entries), returning the entry it
// verified. A corrupt or torn newest entry — the window a crash during
// write leaves behind — falls back to the previous generation instead
// of failing the resume; only when no entry verifies does it return the
// errors, newest first.
func LoadSnapshotFallback(path string, keep int) (*Snapshot, string, error) {
	if keep < 1 {
		keep = 1
	}
	var errs []error
	for i := 0; i < keep; i++ {
		entry := rotationEntry(path, i)
		s, err := LoadSnapshotFile(entry)
		if err == nil {
			return s, entry, nil
		}
		errs = append(errs, fmt.Errorf("%s: %w", entry, err))
		if os.IsNotExist(errors.Unwrap(err)) && i > 0 {
			break // older generations don't exist either
		}
	}
	return nil, "", errors.Join(errs...)
}
