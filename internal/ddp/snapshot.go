package ddp

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"seaice/internal/nn"
	"seaice/internal/noise"
)

// Snapshot is the exact mid-epoch training state at a global-step
// boundary: model weights (stored float64 — exact for either compute
// precision), the full Adam state (moments and, for mixed precision, the
// float64 master weights), each rank's RNG-stream position (dropout
// noise), and the batch cursor. Restoring a snapshot and re-running the
// remaining steps reproduces the uninterrupted run bit for bit, because
// every step is a deterministic function of this state and the seeded
// batch schedule — the recovery invariant the chaos tests assert.
type Snapshot struct {
	// Precision is "float32" or "float64"; a snapshot restores only into
	// the instantiation that wrote it (moments and masters are exact
	// either way, but cross-precision resume would not be bit-identical
	// to either pure run).
	Precision string
	// Key fingerprints the model configuration and training topology;
	// Restore rejects a mismatch.
	Key string
	// Data fingerprints the sample set (count, dimensions, pixel and
	// label content): resuming against different training data cannot be
	// bit-identical, so Fit rejects a mismatch.
	Data string
	// Step is the batch cursor: the number of completed global steps.
	Step int
	// Weights maps parameter name to float64 values (rank-synchronized,
	// so one copy covers every replica).
	Weights map[string][]float64
	// Opt is the optimizer state (identical across ranks).
	Opt nn.AdamState
	// RNG is each rank's generator position (ranks have distinct dropout
	// streams).
	RNG []noise.RNGState
}

// snapMagic heads on-disk snapshot files; the trailing byte is the
// format version.
const snapMagic = "SEAICE-DDP-SNAP\x01"

// ErrSnapshotMismatch reports a snapshot whose key or precision does not
// match the trainer it is being restored into.
var ErrSnapshotMismatch = errors.New("ddp: snapshot does not match trainer configuration")

// ErrBadSnapshot reports a malformed snapshot stream.
var ErrBadSnapshot = errors.New("ddp: malformed snapshot")

// Write encodes the snapshot as magic header + gob.
func (s *Snapshot) Write(w io.Writer) error {
	if _, err := io.WriteString(w, snapMagic); err != nil {
		return fmt.Errorf("ddp: save snapshot: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("ddp: save snapshot: %w", err)
	}
	return nil
}

// SaveSnapshotFile atomically writes the snapshot (temp file + rename),
// so a crash mid-write never corrupts the previous good snapshot — the
// property that makes kill-and-resume safe at any instant.
func SaveSnapshotFile(path string, s *Snapshot) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ddp: save snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".snap-*.tmp")
	if err != nil {
		return fmt.Errorf("ddp: save snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := s.Write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ddp: save snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ddp: save snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot decodes a snapshot stream, verifying the magic header.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(snapMagic))
	if err != nil || string(head) != snapMagic {
		return nil, fmt.Errorf("%w: missing or truncated header", ErrBadSnapshot)
	}
	if _, err := br.Discard(len(snapMagic)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	var s Snapshot
	if err := gob.NewDecoder(br).Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if s.Step < 0 || len(s.RNG) == 0 || s.Weights == nil {
		return nil, fmt.Errorf("%w: inconsistent contents", ErrBadSnapshot)
	}
	return &s, nil
}

// LoadSnapshotFile reads a snapshot file written by SaveSnapshotFile.
func LoadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ddp: load snapshot: %w", err)
	}
	defer f.Close()
	return ReadSnapshot(f)
}
