// Command seaice-infer reproduces the paper's inference workflow (Fig 9):
// it takes a big scene (a PNG, or a freshly generated synthetic scene),
// splits it into tiles, runs the thin-cloud/shadow filter, classifies
// every tile with a trained U-Net checkpoint, and stitches the prediction
// back into a scene-sized label map.
//
// Usage:
//
//	seaice-infer -ckpt unet.ckpt -seed 99 -out pred.png
//	seaice-infer -ckpt unet.ckpt -in scene.png -out pred.png
//	seaice-infer -ckpt unet.ckpt -precision f64       # float64 reference numerics
//	seaice-infer -ckpt unet.q.ckpt -precision int8    # quantized engine
//
// Inference runs in float32 by default (the serving hot path's
// precision); float checkpoints of either precision load into either,
// and a quantized checkpoint (seaice-train -quantize) serves all three
// rungs — its embedded float64 master backs f64/f32, its calibrated
// scale tables rebuild the int8 engine bit-deterministically.
package main

import (
	"flag"
	"fmt"
	"log"

	"seaice/internal/core"
	"seaice/internal/dataset"
	"seaice/internal/metrics"
	"seaice/internal/raster"
	"seaice/internal/scene"
	"seaice/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seaice-infer: ")

	var (
		ckpt      = flag.String("ckpt", "unet.ckpt", "U-Net checkpoint from seaice-train")
		in        = flag.String("in", "", "input scene PNG (empty: generate a synthetic scene)")
		size      = flag.Int("size", 256, "generated scene size (when -in is empty)")
		tile      = flag.Int("tile", 32, "inference tile size")
		seed      = flag.Uint64("seed", 99, "generated scene seed")
		out       = flag.String("out", "prediction.png", "output label-map PNG")
		precision = flag.String("precision", "f32", "inference precision: f32 | f64 | int8")
	)
	flag.Parse()

	prec, err := serve.ParsePrecision(*precision)
	if err != nil {
		log.Fatal(err)
	}
	run(prec, *ckpt, *in, *size, *tile, *seed, *out)
}

// run loads the checkpoint and performs the Fig 9 workflow in the chosen
// compute precision.
func run(precision, ckpt, in string, size, tile int, seed uint64, out string) {
	engine, err := serve.LoadEngine(ckpt, precision)
	if err != nil {
		log.Fatal(err)
	}
	if m, ok := engine.(interface {
		NumConvLayers() int
		NumParams() int
	}); ok {
		log.Printf("loaded %d-conv-layer U-Net (%d parameters, %s)",
			m.NumConvLayers(), m.NumParams(), engine.Precision())
	} else {
		log.Printf("loaded %d-conv-layer U-Net (%s engine)",
			engine.Config().NumConvLayers(), engine.Precision())
	}

	var img *raster.RGB
	var truth *raster.Labels
	if in != "" {
		img, err = raster.ReadPNG(in)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cfg := scene.DefaultConfig(seed)
		cfg.W, cfg.H = size, size
		sc, err := scene.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		img, truth = sc.Image, sc.Truth
		log.Printf("generated synthetic scene (cloud fraction %.1f%%)", 100*sc.CloudFraction)
	}

	pred, err := core.Inference(engine, img, tile, dataset.DefaultBuild())
	if err != nil {
		log.Fatal(err)
	}
	if err := pred.Render().WritePNG(out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prediction written to %s\n", out)

	if truth != nil {
		acc, err := metrics.PixelAccuracy(truth, pred)
		if err != nil {
			log.Fatal(err)
		}
		counts := pred.Counts()
		fmt.Printf("accuracy vs ground truth: %.2f%%\n", 100*acc)
		fmt.Printf("class cover: water %.1f%%, thin %.1f%%, thick %.1f%%\n",
			100*float64(counts[raster.ClassWater])/float64(len(pred.Pix)),
			100*float64(counts[raster.ClassThinIce])/float64(len(pred.Pix)),
			100*float64(counts[raster.ClassThickIce])/float64(len(pred.Pix)))
	}
}
