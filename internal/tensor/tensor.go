// Package tensor provides the dense float64 NCHW tensors underneath the
// from-scratch U-Net. It deliberately implements only what a CNN training
// stack needs — shape bookkeeping, a cache-aware matrix multiply, and the
// im2col/col2im transforms that turn convolutions into matrix products —
// with no autograd: each layer in internal/nn derives its own backward
// pass, validated by finite-difference tests.
//
// Parallelism/bit-identity guarantees: the GEMM and im2col/col2im
// kernels fan out over disjoint output panels/stripes on an explicit
// pool (pool.Shared() in training), and every output element accumulates
// in the serial reference order — results are bit-identical at any
// worker count, property-tested against the preserved pre-engine
// kernels in ref.go.
package tensor

import (
	"fmt"

	"seaice/internal/noise"
)

// Tensor is a dense row-major tensor.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zeroed tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panicBadShape(s, shape)
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// panicBadShape reports an invalid dimension. It copies the shape before
// formatting so the caller's variadic slice never escapes to the heap —
// that keeps New and Grow allocation-free on their hot paths, which the
// training engine's zero-steady-state-alloc guarantee depends on.
func panicBadShape(dim int, shape []int) {
	panic(fmt.Sprintf("tensor: invalid dimension %d in %v", dim, append([]int(nil), shape...)))
}

// FromData wraps existing data; len(data) must match the shape volume.
func FromData(data []float64, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Zero clears all elements in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// SameShape reports whether two tensors have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Reshape returns a view with a new shape of equal volume (shares data).
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.Shape, len(t.Data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// AddInPlace accumulates o into t element-wise.
func (t *Tensor) AddInPlace(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic(fmt.Sprintf("tensor: add size mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// FillRandn fills the tensor with N(0, std) values from a seeded RNG.
func (t *Tensor) FillRandn(rng *noise.RNG, std float64) {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

// Grow resizes *buf to the given shape, reallocating only when the backing
// array is too small; contents are unspecified. It is the grow-only scratch
// buffer primitive behind the training engine's zero-steady-state-alloc
// guarantee: layers call Grow on the same pointer every step and after the
// first step no allocation happens. Returns *buf for convenience.
func Grow(buf **Tensor, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panicBadShape(s, shape)
		}
		n *= s
	}
	t := *buf
	if t == nil || cap(t.Data) < n {
		*buf = New(shape...)
		return *buf
	}
	t.Data = t.Data[:n]
	t.Shape = append(t.Shape[:0], shape...)
	return t
}
