package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"seaice/internal/core"
	"seaice/internal/dataset"
	"seaice/internal/raster"
)

// CoordConfig sizes the cluster coordinator.
type CoordConfig struct {
	// TileSize is the cluster tile edge; every worker node must serve the
	// same size.
	TileSize int
	// Nodes lists worker addresses (host:port); node index is the hash
	// ring identity.
	Nodes []string
	// Build supplies the thin-cloud/shadow filter; the coordinator
	// filters once at scene scale, so workers classify pre-filtered
	// imagery.
	Build dataset.BuildConfig
	// HealthEvery is the health-probe period; 0 selects a 1s default.
	HealthEvery time.Duration
	// Timeout bounds each worker HTTP call; 0 selects 30s.
	Timeout time.Duration
	// Logf receives routing events (node down/up, reroutes); nil
	// discards them.
	Logf func(format string, args ...any)
}

// CoordStats is the coordinator's /statz payload.
type CoordStats struct {
	Requests  int   `json:"requests"`
	Tiles     int   `json:"tiles"`
	Rerouted  int   `json:"rerouted_tiles"`
	NodesUp   int   `json:"nodes_up"`
	NodesDown []int `json:"nodes_down"`
}

// Coordinator fronts a cluster of worker serve nodes: it decodes and
// filters each scene once, shards its tiles across the nodes by
// consistent-hashing their content SHA-256 (so each distinct tile is
// classified — and cached — by exactly one node), ships each node's
// share as a single strip image, and stitches the returned label bytes
// back to scene size. A health loop probes /healthz; tiles owned by a
// down node reroute clockwise to the next live node, and worker 429
// backpressure propagates to the client verbatim.
type Coordinator struct {
	cfg    CoordConfig
	ring   *HashRing
	client *http.Client
	mux    *http.ServeMux

	mu       sync.Mutex
	down     []bool
	requests int
	tiles    int
	rerouted int

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewCoordinator validates cfg and starts the health loop.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if cfg.TileSize < 1 {
		return nil, fmt.Errorf("serve: coordinator tile size must be ≥1, got %d", cfg.TileSize)
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("serve: coordinator needs ≥1 worker node")
	}
	if cfg.HealthEvery <= 0 {
		cfg.HealthEvery = time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	ring, err := NewHashRing(len(cfg.Nodes))
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:    cfg,
		ring:   ring,
		client: &http.Client{Timeout: cfg.Timeout},
		down:   make([]bool, len(cfg.Nodes)),
		stop:   make(chan struct{}),
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("/classify", c.handleClassify)
	c.mux.HandleFunc("/healthz", c.handleHealthz)
	c.mux.HandleFunc("/statz", c.handleStatz)
	c.wg.Add(1)
	go c.healthLoop()
	return c, nil
}

// Handler returns the coordinator's HTTP handler tree.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Close stops the health loop.
func (c *Coordinator) Close() {
	close(c.stop)
	c.wg.Wait()
}

// Stats snapshots the coordinator's counters.
func (c *Coordinator) Stats() CoordStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CoordStats{Requests: c.requests, Tiles: c.tiles, Rerouted: c.rerouted, NodesDown: []int{}}
	for node, d := range c.down {
		if d {
			s.NodesDown = append(s.NodesDown, node)
		} else {
			s.NodesUp++
		}
	}
	return s
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *Coordinator) isDown(node int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[node]
}

// setDown records a node's health transition, reporting whether the
// state changed.
func (c *Coordinator) setDown(node int, down bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down[node] == down {
		return false
	}
	c.down[node] = down
	return true
}

func (c *Coordinator) allDown() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range c.down {
		if !d {
			return false
		}
	}
	return true
}

// healthLoop probes every node's /healthz each period and flips its
// up/down mark; a recovered node starts receiving its arcs again on the
// next request.
func (c *Coordinator) healthLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.HealthEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			for node := range c.cfg.Nodes {
				ok := c.probe(node)
				if c.setDown(node, !ok) {
					if ok {
						c.logf("serve: node %d (%s) healthy again", node, c.cfg.Nodes[node])
					} else {
						c.logf("serve: node %d (%s) failed health check", node, c.cfg.Nodes[node])
					}
				}
			}
		}
	}
}

// probe reports whether a node answers its health check.
func (c *Coordinator) probe(node int) bool {
	resp, err := c.client.Get("http://" + c.cfg.Nodes[node] + "/healthz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// workerReject is a worker response the coordinator propagates to the
// client unchanged (backpressure and input errors), as opposed to a node
// failure it reroutes around.
type workerReject struct {
	status     int
	retryAfter string
	body       []byte
	contentTyp string
}

// handleClassify implements the sharded POST /classify: decode, filter
// once, split, route tile groups to their hash-ring owners, stitch.
func (c *Coordinator) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a PNG to /classify", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	model := r.URL.Query().Get("model")
	img, errStatus, err := decodeSceneBody(r, c.cfg.TileSize)
	if err != nil {
		http.Error(w, err.Error(), errStatus)
		return
	}
	filtered := core.FilterScene(img, c.cfg.Build)
	tiles, grid, err := raster.Split(filtered, c.cfg.TileSize, c.cfg.TileSize)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	preds, reject, err := c.classifyTiles(model, tiles)
	if reject != nil {
		if reject.retryAfter != "" {
			w.Header().Set("Retry-After", reject.retryAfter)
		}
		if reject.contentTyp != "" {
			w.Header().Set("Content-Type", reject.contentTyp)
		}
		w.WriteHeader(reject.status)
		w.Write(reject.body)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	labels, err := raster.StitchLabels(preds, grid)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	c.mu.Lock()
	c.requests++
	c.tiles += len(tiles)
	c.mu.Unlock()

	counts := labels.Counts()
	total := float64(len(labels.Pix))
	stats := classifyStats{
		Model:      model,
		Tiles:      len(tiles),
		Water:      float64(counts[raster.ClassWater]) / total,
		ThinIce:    float64(counts[raster.ClassThinIce]) / total,
		ThickIce:   float64(counts[raster.ClassThickIce]) / total,
		ElapsedMS:  float64(time.Since(start)) / float64(time.Millisecond),
		TileSize:   c.cfg.TileSize,
		FilterUsed: true,
	}
	hdr, _ := json.Marshal(stats)
	var buf bytes.Buffer
	if err := labels.Render().EncodePNG(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	w.Header().Set("X-Seaice-Stats", string(hdr))
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// classifyTiles routes every tile to its consistent-hash owner and
// collects predictions index-aligned with tiles. Node failures mark the
// node down and reroute its tiles clockwise; each failure shrinks the
// live set, so the loop terminates within one round per node.
func (c *Coordinator) classifyTiles(model string, tiles []raster.Tile) ([]*raster.Labels, *workerReject, error) {
	preds := make([]*raster.Labels, len(tiles))
	pending := make([]int, len(tiles))
	for i := range pending {
		pending[i] = i
	}
	for round := 0; round <= len(c.cfg.Nodes); round++ {
		if len(pending) == 0 {
			return preds, nil, nil
		}
		if c.allDown() {
			return nil, nil, fmt.Errorf("serve: no live worker nodes")
		}
		// Group the pending tiles by their current live owner.
		groups := map[int][]int{}
		for _, i := range pending {
			key := TileKey(model, tiles[i].Image)
			node := c.ring.OwnerAvoiding(key, c.isDown)
			if round > 0 {
				c.mu.Lock()
				c.rerouted++
				c.mu.Unlock()
			}
			groups[node] = append(groups[node], i)
		}
		type result struct {
			node   int
			idxs   []int
			labels []*raster.Labels
			reject *workerReject
			err    error
		}
		results := make(chan result, len(groups))
		for node, idxs := range groups {
			go func(node int, idxs []int) {
				labels, reject, err := c.classifyOnNode(node, model, tiles, idxs)
				results <- result{node, idxs, labels, reject, err}
			}(node, idxs)
		}
		pending = pending[:0]
		var reject *workerReject
		for range groups {
			res := <-results
			switch {
			case res.reject != nil:
				reject = res.reject
			case res.err != nil:
				// Node failure: mark it down and retry its tiles on the
				// next live owner.
				if c.setDown(res.node, true) {
					c.logf("serve: node %d (%s) failed, rerouting %d tiles: %v",
						res.node, c.cfg.Nodes[res.node], len(res.idxs), res.err)
				}
				pending = append(pending, res.idxs...)
			default:
				for j, i := range res.idxs {
					preds[i] = res.labels[j]
				}
			}
		}
		if reject != nil {
			return nil, reject, nil
		}
	}
	return nil, nil, fmt.Errorf("serve: tiles still unrouted after exhausting nodes")
}

// classifyOnNode ships one node's tile share as vertical strip images
// (tileSize wide, k·tileSize tall — raster.Split on a strip yields
// exactly those k tiles in order) and slices the returned raw label
// bytes back into per-tile label maps. Strips are capped so their height
// stays inside the worker's accepted scene dimensions.
func (c *Coordinator) classifyOnNode(node int, model string, tiles []raster.Tile, idxs []int) ([]*raster.Labels, *workerReject, error) {
	stripMax := maxSceneDim / c.cfg.TileSize
	out := make([]*raster.Labels, 0, len(idxs))
	for lo := 0; lo < len(idxs); lo += stripMax {
		hi := lo + stripMax
		if hi > len(idxs) {
			hi = len(idxs)
		}
		labels, reject, err := c.classifyStrip(node, model, tiles, idxs[lo:hi])
		if reject != nil || err != nil {
			return nil, reject, err
		}
		out = append(out, labels...)
	}
	return out, nil, nil
}

// classifyStrip runs one strip-sized HTTP round trip against a node.
func (c *Coordinator) classifyStrip(node int, model string, tiles []raster.Tile, idxs []int) ([]*raster.Labels, *workerReject, error) {
	ts := c.cfg.TileSize
	strip := raster.NewRGB(ts, ts*len(idxs))
	tilePix := 3 * ts * ts
	for j, i := range idxs {
		copy(strip.Pix[j*tilePix:(j+1)*tilePix], tiles[i].Image.Pix)
	}
	var body bytes.Buffer
	if err := strip.EncodePNG(&body); err != nil {
		return nil, nil, err
	}
	url := "http://" + c.cfg.Nodes[node] + "/classify?filtered=1&format=raw"
	if model != "" {
		url += "&model=" + model
	}
	resp, err := c.client.Post(url, "image/png", &body)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode >= 500:
		// Treat server-side failure like a dead node: reroute.
		return nil, nil, fmt.Errorf("serve: node %d returned %s", node, resp.Status)
	default:
		// 4xx (backpressure, bad model, …) propagates to the client.
		return nil, &workerReject{
			status:     resp.StatusCode,
			retryAfter: resp.Header.Get("Retry-After"),
			body:       payload,
			contentTyp: resp.Header.Get("Content-Type"),
		}, nil
	}
	if len(payload) != ts*ts*len(idxs) {
		return nil, nil, fmt.Errorf("serve: node %d returned %d label bytes, want %d",
			node, len(payload), ts*ts*len(idxs))
	}
	labels := make([]*raster.Labels, len(idxs))
	for j := range idxs {
		l := raster.NewLabels(ts, ts)
		for k, b := range payload[j*ts*ts : (j+1)*ts*ts] {
			if b >= raster.NumClasses {
				return nil, nil, fmt.Errorf("serve: node %d returned invalid class %d", node, b)
			}
			l.Pix[k] = raster.Class(b)
		}
		labels[j] = l
	}
	return labels, nil, nil
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s := c.Stats()
	status := "ok"
	w.Header().Set("Content-Type", "application/json")
	if s.NodesUp == 0 {
		status = "degraded"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(map[string]any{
		"status":     status,
		"role":       "coordinator",
		"nodes":      c.cfg.Nodes,
		"nodes_up":   s.NodesUp,
		"nodes_down": s.NodesDown,
	})
}

func (c *Coordinator) handleStatz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(c.Stats())
}
