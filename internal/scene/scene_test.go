package scene

import (
	"testing"

	"seaice/internal/colorspace"
	"seaice/internal/raster"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(77)
	cfg.W, cfg.H = 128, 128
	a, err := Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	for i := range a.Image.Pix {
		if a.Image.Pix[i] != b.Image.Pix[i] {
			t.Fatalf("same seed produced different scenes at byte %d", i)
		}
	}
	for i := range a.Truth.Pix {
		if a.Truth.Pix[i] != b.Truth.Pix[i] {
			t.Fatalf("same seed produced different truth at %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfgA := DefaultConfig(1)
	cfgA.W, cfgA.H = 64, 64
	cfgB := cfgA
	cfgB.Seed = 2
	a, _ := Generate(cfgA)
	b, _ := Generate(cfgB)
	same := 0
	for i := range a.Image.Pix {
		if a.Image.Pix[i] == b.Image.Pix[i] {
			same++
		}
	}
	if same == len(a.Image.Pix) {
		t.Fatal("different seeds produced identical scenes")
	}
}

// TestCleanSurfaceRespectsHSVBands: the renderer's contract with the
// auto-labeler — every clean pixel's value channel must sit inside its
// class's HSV band (§III-B thresholds), up to sensor noise.
func TestCleanSurfaceRespectsHSVBands(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.W, cfg.H = 256, 256
	cfg.NoiseSigma = 0 // isolate the deterministic surface
	cfg.Clouds = ClearClouds()
	sc, err := Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	for i := 0; i < cfg.W*cfg.H; i++ {
		v := maxByte(sc.Clean.Pix[3*i], sc.Clean.Pix[3*i+1], sc.Clean.Pix[3*i+2])
		switch sc.Truth.Pix[i] {
		case raster.ClassWater:
			if v > waterVMax {
				t.Fatalf("water pixel %d has V=%d > %d", i, v, waterVMax)
			}
		case raster.ClassThinIce:
			if v < thinVMin || v > thinVMax {
				t.Fatalf("thin-ice pixel %d has V=%d outside [%d,%d]", i, v, thinVMin, thinVMax)
			}
		case raster.ClassThickIce:
			if v < thickVMin {
				t.Fatalf("thick-ice pixel %d has V=%d < %d", i, v, thickVMin)
			}
		}
	}
}

func maxByte(a, b, c uint8) uint8 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	return m
}

// TestAllClassesPresent: a default scene must contain meaningful amounts
// of all three classes — the experiments depend on class diversity.
func TestAllClassesPresent(t *testing.T) {
	cfg := DefaultConfig(9)
	sc, err := Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	counts := sc.Truth.Counts()
	total := cfg.W * cfg.H
	for cls, n := range counts {
		if n < total/50 {
			t.Fatalf("class %d covers only %d/%d pixels", cls, n, total)
		}
	}
}

// TestCloudsBrightenAndShadowsDarken: the atmospheric model must move
// pixel brightness in the documented directions.
func TestCloudsBrightenAndShadowsDarken(t *testing.T) {
	cfg := DefaultConfig(13)
	cfg.NoiseSigma = 0
	sc, err := Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	brightened, darkened, checked := 0, 0, 0
	for i := range sc.Truth.Pix {
		a := sc.CloudOpacity.Pix[i]
		sh := sc.Shadow.Pix[i]
		cleanV := maxByte(sc.Clean.Pix[3*i], sc.Clean.Pix[3*i+1], sc.Clean.Pix[3*i+2])
		obsV := maxByte(sc.Image.Pix[3*i], sc.Image.Pix[3*i+1], sc.Image.Pix[3*i+2])
		if a > 0.2 && sh < 0.01 && sc.Truth.Pix[i] == raster.ClassWater {
			checked++
			if obsV > cleanV {
				brightened++
			}
		}
		if sh > 0.15 && a < 0.01 && sc.Truth.Pix[i] == raster.ClassThickIce {
			checked++
			if obsV < cleanV {
				darkened++
			}
		}
	}
	if checked == 0 {
		t.Skip("scene has no isolated cloud/shadow pixels to check")
	}
	if brightened+darkened < checked*9/10 {
		t.Fatalf("atmosphere directionality violated: %d+%d of %d", brightened, darkened, checked)
	}
}

func TestCloudMaskConsistent(t *testing.T) {
	cfg := DefaultConfig(21)
	cfg.W, cfg.H = 128, 128
	sc, _ := Generate(cfg)
	n := 0
	for i := range sc.CloudMask.Pix {
		disturbed := sc.CloudOpacity.Pix[i] >= 0.05 || sc.Shadow.Pix[i] >= 0.05
		masked := sc.CloudMask.Pix[i] != 0
		if disturbed != masked {
			t.Fatalf("mask inconsistent at %d", i)
		}
		if masked {
			n++
		}
	}
	if got := float64(n) / float64(len(sc.CloudMask.Pix)); got != sc.CloudFraction {
		t.Fatalf("cloud fraction %f, mask says %f", sc.CloudFraction, got)
	}
}

func TestClearCloudsProduceNoDisturbance(t *testing.T) {
	cfg := DefaultConfig(33)
	cfg.W, cfg.H = 96, 96
	cfg.Clouds = ClearClouds()
	sc, _ := Generate(cfg)
	if sc.CloudFraction != 0 {
		t.Fatalf("clear spec produced cloud fraction %f", sc.CloudFraction)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := DefaultConfig(1)
	bad.W = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("expected error for zero width")
	}
	bad = DefaultConfig(1)
	bad.ThinThreshold = bad.ThickThreshold
	if _, err := Generate(bad); err == nil {
		t.Fatal("expected error for inverted thresholds")
	}
}

func TestCollectionTileArithmetic(t *testing.T) {
	cc := DefaultCollection(4)
	if cc.Scenes != 66 || cc.W != 512 {
		t.Fatalf("default collection changed: %+v", cc)
	}
	// 66 scenes × (512/64)² tiles = 4224, the paper's tile count.
	tiles := cc.Scenes * (cc.W / 64) * (cc.H / 64)
	if tiles != 4224 {
		t.Fatalf("campaign yields %d tiles, want 4224", tiles)
	}
}

func TestCollectionMixesCloudiness(t *testing.T) {
	cc := DefaultCollection(8)
	cc.Scenes = 12
	cc.W, cc.H = 128, 128
	scenes, err := GenerateCollection(cc)
	if err != nil {
		t.Fatalf("collection: %v", err)
	}
	clear, cloudy := 0, 0
	for _, sc := range scenes {
		if sc.CloudFraction < 0.01 {
			clear++
		} else {
			cloudy++
		}
	}
	if clear == 0 || cloudy == 0 {
		t.Fatalf("campaign not mixed: %d clear, %d cloudy", clear, cloudy)
	}
}

func TestGenerateAtMatchesCollection(t *testing.T) {
	cc := DefaultCollection(15)
	cc.Scenes = 3
	cc.W, cc.H = 64, 64
	scenes, err := GenerateCollection(cc)
	if err != nil {
		t.Fatalf("collection: %v", err)
	}
	one, err := GenerateAt(cc, 1)
	if err != nil {
		t.Fatalf("generateAt: %v", err)
	}
	for i := range one.Image.Pix {
		if one.Image.Pix[i] != scenes[1].Image.Pix[i] {
			t.Fatalf("GenerateAt(1) differs from collection scene 1 at %d", i)
		}
	}
	if _, err := GenerateAt(cc, 5); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

// TestSaturationContract: the cloud filter depends on clean thin ice
// keeping saturation ≥ ~51 and clean thick ice staying ≤ ~15.
func TestSaturationContract(t *testing.T) {
	cfg := DefaultConfig(44)
	cfg.W, cfg.H = 256, 256
	cfg.NoiseSigma = 0
	cfg.Clouds = ClearClouds()
	sc, _ := Generate(cfg)
	hsv := colorspace.ToHSV(sc.Clean)
	for i := range sc.Truth.Pix {
		switch sc.Truth.Pix[i] {
		case raster.ClassThinIce:
			if hsv.Sat[i] < 50 {
				t.Fatalf("thin-ice pixel %d has S=%d < 50; cloud filter contract broken", i, hsv.Sat[i])
			}
		case raster.ClassThickIce:
			if hsv.Sat[i] > 15 {
				t.Fatalf("thick-ice pixel %d has S=%d > 15", i, hsv.Sat[i])
			}
		}
	}
}
