module seaice

go 1.24
