// Command seaice-serve exposes trained U-Net checkpoints as an online
// sea-ice classification service: POST a PNG to /classify and get the
// stitched label map back, with micro-batched inference, a content-hash
// result cache, and backpressure under overload (HTTP 429).
//
// Serve one or more checkpoints (the first is the default model):
//
//	seaice-serve -ckpt unet.ckpt
//	seaice-serve -ckpt man=unet-man.ckpt,auto=unet-auto.ckpt -addr :8080
//
// Inference runs in pure float32 by default — the bandwidth-saving hot
// path; pass -precision f64 for the float64 reference numerics.
// Checkpoints from either precision load into either (the versioned
// header converts on load).
//
// The inference worker pool is self-healing: a worker panic restarts the
// worker and requeues its batch without dropping queued requests (429s
// only past the existing queue bound). -chaos injects seeded worker
// faults to demonstrate it; /healthz reports live_workers and
// worker_restarts.
//
// Load-generator mode fires concurrent tile requests at a running
// server and reports throughput and latency percentiles; with no
// -target it spins up an in-process server (using -ckpt if given, else
// a freshly initialized demo model) first:
//
//	seaice-serve -loadgen -n 512 -c 32
//	seaice-serve -loadgen -target http://localhost:8080 -n 1000 -c 64
//
// Coordinator mode fronts a cluster of worker servers: each scene's
// tiles are sharded across the nodes by consistent-hashing their
// content, so every distinct tile is classified — and cached — by
// exactly one node. Sick nodes sit behind per-node circuit breakers
// (EWMA failure detector, half-open trial re-admission), slow strips are
// hedged to the next ring owner after a p99-derived delay, reroutes and
// hedges share a token-bucket retry budget, and when tiles cannot be
// classified anywhere the coordinator serves a degraded partial response
// (stale cache + X-Seaice-Partial marker) instead of a blanket 503:
//
//	seaice-serve -nodes 127.0.0.1:8081,127.0.0.1:8082 -addr :8080
//
// Clients may bound each request with an X-Seaice-Deadline-Ms header:
// requests the service-time model predicts cannot finish in budget are
// rejected up front (429 with a model-derived Retry-After), queued
// requests whose budget expires are dropped before compute (504), and
// the coordinator forwards only the remaining budget to workers. The
// load generator sets the header via -deadline.
//
// -slo runs the deterministic chaos-under-load SLO benchmark (no server
// needed): it sweeps offered load over the simulated cluster with and
// without burst/slownode/worker-kill faults and writes the
// latency-versus-load curves to -slo-out (the committed BENCH_serve.json
// is this artifact; the SLO regression test re-measures it).
//
// Both serving modes shut down gracefully on SIGINT/SIGTERM: stop
// accepting, drain in-flight work, then log the final stats snapshot.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"seaice/internal/chaos"
	"seaice/internal/raster"
	"seaice/internal/scene"
	"seaice/internal/serve"
	"seaice/internal/unet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seaice-serve: ")

	var (
		addr      = flag.String("addr", ":8080", "listen address")
		ckpt      = flag.String("ckpt", "", "checkpoint(s): path, or comma-separated name=path pairs")
		tile      = flag.Int("tile", 32, "served tile size")
		batch     = flag.Int("batch", 16, "max tiles per forward-pass micro-batch")
		batchWait = flag.Duration("batch-wait", 2*time.Millisecond, "max wait for a micro-batch to fill")
		workers   = flag.Int("workers", 0, "inference workers (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 256, "bounded request queue size")
		cacheSize = flag.Int("cache", 4096, "tile result cache entries (0 disables)")

		precision = flag.String("precision", "f32", "inference precision: f32 | f64")
		chaosSpec = flag.String("chaos", "", `inject seeded worker faults, e.g. "7:serve@5,slownode@40:30ms" (see internal/chaos)`)
		nodes     = flag.String("nodes", "", "comma-separated worker host:port list — run as cluster coordinator instead of serving models")

		hedgeAfter   = flag.Duration("hedge-after", 0, "coordinator: fixed strip hedge delay (0 = auto from p99, negative disables)")
		probeTimeout = flag.Duration("probe-timeout", 0, "coordinator: health probe timeout (0 = health period capped at 2s)")
		retryBurst   = flag.Float64("retry-burst", 0, "coordinator: retry/hedge token bucket size (0 = default 32)")

		loadgen  = flag.Bool("loadgen", false, "run the load generator instead of serving")
		target   = flag.String("target", "", "loadgen: base URL of a running server (empty = in-process)")
		n        = flag.Int("n", 256, "loadgen: total requests")
		c        = flag.Int("c", 16, "loadgen: concurrent clients")
		seed     = flag.Uint64("seed", 1, "loadgen: synthetic tile seed")
		deadline = flag.Duration("deadline", 0, "loadgen: per-request deadline sent as X-Seaice-Deadline-Ms (0 = none)")

		slo    = flag.Bool("slo", false, "run the chaos-under-load SLO benchmark and exit")
		sloOut = flag.String("slo-out", "BENCH_serve.json", "SLO benchmark output path")
	)
	flag.Parse()

	if *slo {
		if err := runSLO(*sloOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	cfg := serve.DefaultConfig()
	cfg.TileSize = *tile
	cfg.MaxBatch = *batch
	cfg.BatchWait = *batchWait
	if *workers > 0 {
		cfg.Workers = *workers
	}
	cfg.QueueSize = *queue
	cfg.CacheSize = *cacheSize
	if *chaosSpec != "" {
		sched, err := chaos.Parse(*chaosSpec)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Chaos = chaos.New(sched, 0)
		log.Printf("chaos: %d seeded worker faults armed (%s); watch worker_restarts on /healthz",
			cfg.Chaos.Remaining(), *chaosSpec)
	}

	if *nodes != "" {
		if *loadgen {
			log.Fatal("-nodes and -loadgen are mutually exclusive")
		}
		runCoordinator(cfg, *addr, *nodes, *hedgeAfter, *probeTimeout, *retryBurst)
		return
	}

	prec, err := serve.ParsePrecision(*precision)
	if err != nil {
		log.Fatal(err)
	}
	runMain(cfg, *addr, *ckpt, prec, *loadgen, *target, *n, *c, *seed, *deadline)
}

// runSLO measures the deterministic chaos-under-load benchmark and
// writes the artifact (see serve.SLOBench) to path.
func runSLO(path string) error {
	log.Printf("measuring SLO curves (baseline + faulted sweeps over the simulated cluster)")
	bench, err := serve.RunSLOBench()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for i, rate := range bench.Rates {
		log.Printf("%6.0f rps: baseline p99 %7.1fms | faulted p99 %7.1fms (%d rejected, %d expired)",
			rate, bench.Baseline[i].P99MS, bench.Faulted[i].P99MS,
			bench.Faulted[i].RejectedOverload+bench.Faulted[i].RejectedInfeasible,
			bench.Faulted[i].ExpiredDropped)
	}
	log.Printf("wrote %s", path)
	return nil
}

// runCoordinator fronts the listed worker nodes with the consistent-hash
// sharding coordinator until a shutdown signal arrives.
func runCoordinator(cfg serve.Config, addr, nodeSpec string, hedgeAfter, probeTimeout time.Duration, retryBurst float64) {
	var nodeList []string
	for _, n := range strings.Split(nodeSpec, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodeList = append(nodeList, n)
		}
	}
	coord, err := serve.NewCoordinator(serve.CoordConfig{
		TileSize:     cfg.TileSize,
		Nodes:        nodeList,
		Build:        cfg.Build,
		HedgeAfter:   hedgeAfter,
		ProbeTimeout: probeTimeout,
		RetryBurst:   retryBurst,
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("coordinating %d worker nodes on %s (tile %d): %v", len(nodeList), addr, cfg.TileSize, nodeList)
	serveUntilSignal(addr, coord.Handler(), func() {
		coord.Close()
		s := coord.Stats()
		log.Printf("final stats: %d requests, %d tiles, %d rerouted, %d hedged (%d wins), %d stale, %d partial, %d/%d nodes up",
			s.Requests, s.Tiles, s.Rerouted, s.Hedged, s.HedgeWins,
			s.StaleTiles, s.PartialResponses, s.NodesUp, len(nodeList))
	})
}

// serveUntilSignal runs the HTTP server until SIGINT/SIGTERM, then shuts
// down gracefully: the listener stops accepting, in-flight requests get
// a drain window, and drain runs last for subsystem teardown and the
// final stats flush.
func serveUntilSignal(addr string, handler http.Handler, drain func()) {
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	httpSrv := &http.Server{Addr: addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutdown signal received — draining in-flight requests")
	shutdownCtx, done := context.WithTimeout(context.Background(), 30*time.Second)
	defer done()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	drain()
	log.Printf("shutdown complete")
}

// runMain dispatches serving or load generation in the chosen precision.
func runMain(cfg serve.Config, addr, ckpt, precision string, loadgen bool, target string, n, c int, seed uint64, deadline time.Duration) {
	if loadgen {
		if err := runLoadgen(cfg, ckpt, precision, target, n, c, seed, deadline); err != nil {
			log.Fatal(err)
		}
		return
	}

	if ckpt == "" {
		log.Fatal("serving requires -ckpt (train one with seaice-train)")
	}
	reg := serve.NewRegistry()
	if err := loadCheckpoints(reg, ckpt, precision); err != nil {
		log.Fatal(err)
	}
	srv, err := serve.NewServer(cfg, reg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving models %v on %s (tile %d, batch ≤%d, %d workers, queue %d, cache %d)",
		reg.Names(), addr, cfg.TileSize, cfg.MaxBatch, cfg.Workers, cfg.QueueSize, cfg.CacheSize)
	serveUntilSignal(addr, srv.Handler(), func() {
		srv.Close() // stops the inference pool after draining its queue
		s := srv.Stats()
		log.Printf("final stats: %d requests, %d tiles, %.1f%% cache hit rate, %d worker restarts",
			s.Requests, s.Tiles, 100*s.CacheHitRate, s.WorkerRestarts)
	})
}

// loadCheckpoints parses "path" or "name=path,name=path" into the
// registry at the requested precision; an unnamed single checkpoint
// registers as "default".
func loadCheckpoints(reg *serve.Registry, spec, precision string) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, path := "default", part
		if i := strings.IndexByte(part, '='); i >= 0 {
			name, path = part[:i], part[i+1:]
		}
		if err := reg.Load(name, path, precision); err != nil {
			return err
		}
		log.Printf("loaded %s model %q from %s", precision, name, path)
	}
	return nil
}

// demoEngine builds a freshly initialized (untrained) engine for load
// generation without a checkpoint. The int8 demo calibrates the random
// master on synthetic scene tiles before quantizing — the same
// calibrate→quantize path seaice-train -quantize runs on real data.
func demoEngine(precision string, seed uint64, tileSize int) (unet.Engine, error) {
	switch precision {
	case "f32":
		return unet.New[float32](unet.FastConfig(seed))
	case "f64":
		return unet.New[float64](unet.FastConfig(seed))
	}
	m, err := unet.New[float64](unet.FastConfig(seed))
	if err != nil {
		return nil, err
	}
	sceneCfg := scene.DefaultConfig(seed)
	sceneCfg.W, sceneCfg.H = 4*tileSize, 4*tileSize
	sc, err := scene.Generate(sceneCfg)
	if err != nil {
		return nil, err
	}
	tiles, _, err := raster.Split(sc.Image, tileSize, tileSize)
	if err != nil {
		return nil, err
	}
	imgs := make([]*raster.RGB, len(tiles))
	for i, t := range tiles {
		imgs[i] = t.Image
	}
	cal, err := unet.Calibrate(m, imgs, 8)
	if err != nil {
		return nil, err
	}
	return unet.Quantize(m, cal)
}

// runLoadgen drives the /classify endpoint with concurrent synthetic
// tiles and reports achieved throughput and latency percentiles.
func runLoadgen(cfg serve.Config, ckpt, precision, target string, n, c int, seed uint64, deadline time.Duration) error {
	if target == "" {
		reg := serve.NewRegistry()
		if ckpt != "" {
			if err := loadCheckpoints(reg, ckpt, precision); err != nil {
				return err
			}
		} else {
			log.Printf("no -ckpt: load-testing a freshly initialized (untrained) %s demo model", precision)
			e, err := demoEngine(precision, seed, cfg.TileSize)
			if err != nil {
				return err
			}
			if err := reg.Add("demo", e); err != nil {
				return err
			}
		}
		srv, err := serve.NewServer(cfg, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		target = ts.URL
		log.Printf("in-process server on %s", target)
	}

	// Pre-render a pool of distinct tile PNGs from a synthetic scene.
	sceneCfg := scene.DefaultConfig(seed)
	sceneCfg.W, sceneCfg.H = 8*cfg.TileSize, 8*cfg.TileSize
	sc, err := scene.Generate(sceneCfg)
	if err != nil {
		return err
	}
	tiles, _, err := raster.Split(sc.Image, cfg.TileSize, cfg.TileSize)
	if err != nil {
		return err
	}
	bodies := make([][]byte, len(tiles))
	for i, t := range tiles {
		var buf bytes.Buffer
		if err := t.Image.EncodePNG(&buf); err != nil {
			return err
		}
		bodies[i] = buf.Bytes()
	}

	if deadline > 0 {
		log.Printf("firing %d requests from %d clients at %s/classify (deadline %v)", n, c, target, deadline)
	} else {
		log.Printf("firing %d requests from %d clients at %s/classify", n, c, target)
	}
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		rejected  int
		expired   int
		failed    int
	)
	start := time.Now()
	perClient := (n + c - 1) / c
	for cl := 0; cl < c; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed) + int64(cl)))
			client := &http.Client{Timeout: 60 * time.Second}
			for i := 0; i < perClient && cl*perClient+i < n; i++ {
				body := bodies[rng.Intn(len(bodies))]
				req, err := http.NewRequest(http.MethodPost, target+"/classify", bytes.NewReader(body))
				if err != nil {
					mu.Lock()
					failed++
					mu.Unlock()
					continue
				}
				req.Header.Set("Content-Type", "image/png")
				if deadline > 0 {
					req.Header.Set(serve.DeadlineHeader, fmt.Sprintf("%d", deadline.Milliseconds()))
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				lat := time.Since(t0)
				mu.Lock()
				switch {
				case err != nil:
					failed++
				case resp.StatusCode == http.StatusTooManyRequests:
					rejected++
				case resp.StatusCode == http.StatusGatewayTimeout:
					expired++
				case resp.StatusCode != http.StatusOK:
					failed++
				default:
					latencies = append(latencies, lat)
				}
				mu.Unlock()
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)))
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return latencies[i]
	}
	fmt.Printf("requests:   %d ok, %d rejected (429), %d expired (504), %d failed\n", len(latencies), rejected, expired, failed)
	fmt.Printf("elapsed:    %.2fs (%.1f req/s achieved)\n", elapsed.Seconds(), float64(len(latencies))/elapsed.Seconds())
	fmt.Printf("latency:    p50 %v  p90 %v  p99 %v\n", pct(0.50), pct(0.90), pct(0.99))

	// Pull the server-side view when available.
	if resp, err := http.Get(target + "/statz"); err == nil {
		defer resp.Body.Close()
		var snap serve.Snapshot
		if json.NewDecoder(resp.Body).Decode(&snap) == nil {
			fmt.Printf("server:     %.1f tiles/s, avg batch %.2f, cache hit rate %.1f%%, queue depth %d\n",
				snap.TilesPerS, snap.AvgBatchSize, 100*snap.CacheHitRate, snap.QueueDepth)
		}
	}
	return nil
}
