package nn

import (
	"math"
	"testing"

	"seaice/internal/noise"
	"seaice/internal/tensor"
)

// numGrad computes ∂loss/∂data[i] by central differences.
func numGrad(data []float64, i int, loss func() float64) float64 {
	const eps = 1e-5
	orig := data[i]
	data[i] = orig + eps
	lp := loss()
	data[i] = orig - eps
	lm := loss()
	data[i] = orig
	return (lp - lm) / (2 * eps)
}

// scalarLoss reduces a tensor to ½Σy² so dL/dy = y, giving a simple,
// well-conditioned target for gradient checks.
func scalarLoss(y *tensor.F64) float64 {
	s := 0.0
	for _, v := range y.Data {
		s += v * v
	}
	return s / 2
}

// checkLayerGradients validates input and parameter gradients of a layer
// against finite differences on a random input of the given shape.
func checkLayerGradients(t *testing.T, layer Layer[float64], shape []int, tol float64) {
	t.Helper()
	rng := noise.NewRNG(99, 7)
	x := tensor.New[float64](shape...)
	x.FillRandn(rng, 1)

	forwardLoss := func() float64 { return scalarLoss(layer.Forward(x, false)) }

	// analytic gradients
	y := layer.Forward(x, false)
	ZeroGrads(layer.Params())
	dx := layer.Backward(y.Clone()) // dL/dy = y for the ½Σy² loss

	// input gradient, sampled positions
	for i := 0; i < x.Len(); i += 1 + x.Len()/17 {
		want := numGrad(x.Data, i, forwardLoss)
		got := dx.Data[i]
		if math.Abs(got-want) > tol*(1+math.Abs(want)) {
			t.Fatalf("%s: input grad [%d] = %.6g, finite diff %.6g", layer.Name(), i, got, want)
		}
	}
	// parameter gradients, sampled positions
	for _, p := range layer.Params() {
		for i := 0; i < p.W.Len(); i += 1 + p.W.Len()/13 {
			want := numGrad(p.W.Data, i, forwardLoss)
			got := p.Grad.Data[i]
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("%s: param %s grad [%d] = %.6g, finite diff %.6g", layer.Name(), p.Name, i, got, want)
			}
		}
	}
}

func TestConv2DGradients(t *testing.T) {
	rng := noise.NewRNG(1, 1)
	checkLayerGradients(t, NewConv2D[float64]("conv", 3, 4, 3, rng), []int{2, 3, 6, 5}, 1e-6)
}

func TestConv2D1x1Gradients(t *testing.T) {
	rng := noise.NewRNG(2, 1)
	checkLayerGradients(t, NewConv2D[float64]("conv1x1", 4, 3, 1, rng), []int{2, 4, 5, 5}, 1e-6)
}

func TestConvTransposeGradients(t *testing.T) {
	rng := noise.NewRNG(3, 1)
	checkLayerGradients(t, NewConvTranspose2x2[float64]("up", 4, 2, rng), []int{2, 4, 3, 5}, 1e-6)
}

func TestReLUGradients(t *testing.T) {
	checkLayerGradients(t, NewReLU[float64]("relu"), []int{2, 3, 4, 4}, 1e-5)
}

func TestMaxPoolGradients(t *testing.T) {
	checkLayerGradients(t, NewMaxPool2[float64]("pool"), []int{2, 3, 6, 4}, 1e-5)
}

// TestDropoutInference: dropout must be the identity at inference and
// preserve expectation during training.
func TestDropoutInference(t *testing.T) {
	rng := noise.NewRNG(4, 1)
	d := NewDropout[float64]("drop", 0.4, rng)
	x := tensor.New[float64](1, 2, 8, 8)
	x.FillRandn(noise.NewRNG(5, 1), 1)

	y := d.Forward(x, false)
	for i := range y.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatalf("dropout changed data at inference")
		}
	}

	// Training mode: survivors are scaled by 1/(1-rate); over many
	// trials the mean output equals the input.
	sum := 0.0
	const trials = 400
	xi := 7
	for k := 0; k < trials; k++ {
		yt := d.Forward(x, true)
		sum += yt.Data[xi]
	}
	mean := sum / trials
	if math.Abs(mean-x.Data[xi]) > 0.25*math.Abs(x.Data[xi])+0.05 {
		t.Fatalf("dropout expectation %.4f far from input %.4f", mean, x.Data[xi])
	}
}

// TestDropoutBackwardMask: the backward mask must match the forward mask.
func TestDropoutBackwardMask(t *testing.T) {
	rng := noise.NewRNG(6, 1)
	d := NewDropout[float64]("drop", 0.5, rng)
	x := tensor.New[float64](1, 1, 8, 8)
	for i := range x.Data {
		x.Data[i] = 1
	}
	y := d.Forward(x, true)
	dy := tensor.New[float64](1, 1, 8, 8)
	for i := range dy.Data {
		dy.Data[i] = 1
	}
	dx := d.Backward(dy)
	for i := range y.Data {
		if (y.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatalf("dropout forward/backward masks disagree at %d", i)
		}
	}
}

func TestConcatJoinSplit(t *testing.T) {
	c := NewConcat[float64]("cat")
	rng := noise.NewRNG(7, 1)
	a := tensor.New[float64](2, 3, 4, 4)
	b := tensor.New[float64](2, 5, 4, 4)
	a.FillRandn(rng, 1)
	b.FillRandn(rng, 1)

	y := c.Join(a, b)
	if y.Shape[1] != 8 {
		t.Fatalf("concat channels = %d, want 8", y.Shape[1])
	}
	da, db := c.Split(y)
	for i := range a.Data {
		if da.Data[i] != a.Data[i] {
			t.Fatalf("split(a) mismatch at %d", i)
		}
	}
	for i := range b.Data {
		if db.Data[i] != b.Data[i] {
			t.Fatalf("split(b) mismatch at %d", i)
		}
	}
}

// TestSoftmaxCrossEntropyGrad validates the fused loss gradient.
func TestSoftmaxCrossEntropyGrad(t *testing.T) {
	rng := noise.NewRNG(8, 1)
	logits := tensor.New[float64](2, 3, 4, 4)
	logits.FillRandn(rng, 1)
	labels := make([]uint8, 2*4*4)
	lr := noise.NewRNG(9, 1)
	for i := range labels {
		labels[i] = uint8(lr.Intn(3))
	}

	var s SoftmaxCrossEntropy[float64]
	lossFn := func() float64 {
		l, err := s.Loss(logits, labels)
		if err != nil {
			t.Fatalf("loss: %v", err)
		}
		return l
	}
	lossFn()
	g := s.Grad()
	for i := 0; i < logits.Len(); i += 3 {
		want := numGrad(logits.Data, i, lossFn)
		got := g.Data[i]
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("loss grad [%d] = %.8g, finite diff %.8g", i, got, want)
		}
	}
}

// TestSoftmaxGradSumsToZero: per pixel, the softmax-CE gradient over
// classes sums to zero (probabilities sum to one).
func TestSoftmaxGradSumsToZero(t *testing.T) {
	rng := noise.NewRNG(10, 1)
	logits := tensor.New[float64](1, 3, 4, 4)
	logits.FillRandn(rng, 2)
	labels := make([]uint8, 16)

	var s SoftmaxCrossEntropy[float64]
	if _, err := s.Loss(logits, labels); err != nil {
		t.Fatalf("loss: %v", err)
	}
	g := s.Grad()
	plane := 16
	for p := 0; p < plane; p++ {
		sum := g.Data[p] + g.Data[plane+p] + g.Data[2*plane+p]
		if math.Abs(sum) > 1e-12 {
			t.Fatalf("gradient sum over classes at pixel %d = %g", p, sum)
		}
	}
}

// TestAdamConvergesOnQuadratic: Adam must minimize a simple quadratic.
func TestAdamConvergesOnQuadratic(t *testing.T) {
	w := tensor.New[float64](4)
	for i := range w.Data {
		w.Data[i] = float64(i) + 1
	}
	p := &Param[float64]{Name: "w", W: w, Grad: tensor.New[float64](4)}
	opt := NewAdam[float64](0.1)
	for step := 0; step < 500; step++ {
		for i := range w.Data {
			p.Grad.Data[i] = w.Data[i] // d/dw ½w² = w
		}
		opt.Step([]*Param[float64]{p})
		ZeroGrads([]*Param[float64]{p})
	}
	for i, v := range w.Data {
		if math.Abs(v) > 1e-3 {
			t.Fatalf("adam failed to minimize: w[%d]=%g", i, v)
		}
	}
}

// TestPredictArgmax: Predict must return the channel-wise argmax.
func TestPredictArgmax(t *testing.T) {
	logits := tensor.New[float64](1, 3, 2, 2)
	// pixel 0 → class 2, pixel 1 → class 0, pixel 2 → class 1, pixel 3 → class 2
	set := func(ch, p int, v float64) { logits.Data[ch*4+p] = v }
	set(2, 0, 5)
	set(0, 1, 3)
	set(1, 2, 2)
	set(2, 3, 1)
	got := Predict(logits)
	want := []uint8{2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("predict[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
