package raster

import (
	"testing"
	"testing/quick"

	"seaice/internal/noise"
)

func randRGB(seed uint64, w, h int) *RGB {
	rng := noise.NewRNG(seed, 1)
	m := NewRGB(w, h)
	for i := range m.Pix {
		m.Pix[i] = uint8(rng.Intn(256))
	}
	return m
}

func randLabels(seed uint64, w, h int) *Labels {
	rng := noise.NewRNG(seed, 2)
	m := NewLabels(w, h)
	for i := range m.Pix {
		m.Pix[i] = Class(rng.Intn(int(NumClasses)))
	}
	return m
}

func TestRGBSetAt(t *testing.T) {
	m := NewRGB(4, 3)
	m.Set(2, 1, 10, 20, 30)
	r, g, b := m.At(2, 1)
	if r != 10 || g != 20 || b != 30 {
		t.Fatalf("got (%d,%d,%d)", r, g, b)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := randRGB(1, 5, 5)
	c := m.Clone()
	c.Pix[0] = m.Pix[0] + 1
	if m.Pix[0] == c.Pix[0] {
		t.Fatal("clone shares storage")
	}
}

// TestSplitStitchIdentity: splitting a scene into tiles and stitching
// them back must be the identity, for every divisor tile size.
func TestSplitStitchIdentity(t *testing.T) {
	scene := randRGB(2, 48, 32)
	for _, ts := range []int{4, 8, 16} {
		tiles, grid, err := Split(scene, ts, ts)
		if err != nil {
			t.Fatalf("split %d: %v", ts, err)
		}
		back, err := Stitch(tiles, grid)
		if err != nil {
			t.Fatalf("stitch %d: %v", ts, err)
		}
		for i := range scene.Pix {
			if scene.Pix[i] != back.Pix[i] {
				t.Fatalf("tile size %d: mismatch at %d", ts, i)
			}
		}
	}
}

// TestSplitStitchLabelsIdentity mirrors the RGB round-trip for labels.
func TestSplitStitchLabelsIdentity(t *testing.T) {
	lab := randLabels(3, 24, 40)
	tiles, grid, err := SplitLabels(lab, 8, 8)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	back, err := StitchLabels(tiles, grid)
	if err != nil {
		t.Fatalf("stitch: %v", err)
	}
	for i := range lab.Pix {
		if lab.Pix[i] != back.Pix[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestSplitRejectsIndivisible(t *testing.T) {
	if _, _, err := Split(randRGB(4, 30, 30), 7, 7); err == nil {
		t.Fatal("expected error for indivisible tiles")
	}
	if _, err := GridFor(30, 30, 0, 8); err == nil {
		t.Fatal("expected error for zero tile size")
	}
}

func TestStitchRejectsBadTiles(t *testing.T) {
	scene := randRGB(5, 16, 16)
	tiles, grid, _ := Split(scene, 8, 8)

	// duplicate position
	dup := append([]Tile(nil), tiles...)
	dup[1] = dup[0]
	if _, err := Stitch(dup, grid); err == nil {
		t.Fatal("expected duplicate-tile error")
	}
	// wrong count
	if _, err := Stitch(tiles[:2], grid); err == nil {
		t.Fatal("expected count error")
	}
	// wrong size
	bad := append([]Tile(nil), tiles...)
	bad[0].Image = NewRGB(4, 4)
	if _, err := Stitch(bad, grid); err == nil {
		t.Fatal("expected size error")
	}
	// out of grid
	oob := append([]Tile(nil), tiles...)
	oob[0].Col = 99
	if _, err := Stitch(oob, grid); err == nil {
		t.Fatal("expected bounds error")
	}
}

// TestSplitTilesPartitionScene: every pixel of the scene appears in
// exactly one tile at the expected offset.
func TestSplitTilesPartitionScene(t *testing.T) {
	scene := randRGB(6, 32, 16)
	tiles, _, err := Split(scene, 8, 8)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	for _, tile := range tiles {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				tr, tg, tb := tile.Image.At(x, y)
				sr, sg, sb := scene.At(tile.Col*8+x, tile.Row*8+y)
				if tr != sr || tg != sg || tb != sb {
					t.Fatalf("tile (%d,%d) pixel (%d,%d) mismatch", tile.Col, tile.Row, x, y)
				}
			}
		}
	}
}

func TestDownsampleAveragesBoxes(t *testing.T) {
	m := NewRGB(4, 4)
	// top-left 2x2 box: values 10, 20, 30, 40 → mean 25
	m.Set(0, 0, 10, 10, 10)
	m.Set(1, 0, 20, 20, 20)
	m.Set(0, 1, 30, 30, 30)
	m.Set(1, 1, 40, 40, 40)
	d, err := Downsample(m, 2)
	if err != nil {
		t.Fatalf("downsample: %v", err)
	}
	r, _, _ := d.At(0, 0)
	if r != 25 {
		t.Fatalf("box mean %d, want 25", r)
	}
	if d.W != 2 || d.H != 2 {
		t.Fatalf("size %dx%d, want 2x2", d.W, d.H)
	}
	if _, err := Downsample(m, 3); err == nil {
		t.Fatal("expected error for non-divisor factor")
	}
}

func TestDownsampleLabelsMajority(t *testing.T) {
	m := NewLabels(2, 2)
	m.Set(0, 0, ClassWater)
	m.Set(1, 0, ClassThickIce)
	m.Set(0, 1, ClassThickIce)
	m.Set(1, 1, ClassThinIce)
	d, err := DownsampleLabels(m, 2)
	if err != nil {
		t.Fatalf("downsample: %v", err)
	}
	if d.At(0, 0) != ClassThickIce {
		t.Fatalf("majority vote = %v, want thick-ice", d.At(0, 0))
	}
}

func TestLabelsCountsAndRender(t *testing.T) {
	m := randLabels(7, 10, 10)
	counts := m.Counts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 100 {
		t.Fatalf("counts sum to %d, want 100", total)
	}
	r := m.Render()
	// thick ice renders red-dominant, water green-dominant, thin blue
	for i, c := range m.Pix {
		pr, pg, pb := r.Pix[3*i], r.Pix[3*i+1], r.Pix[3*i+2]
		switch c {
		case ClassThickIce:
			if pr <= pg || pr <= pb {
				t.Fatalf("thick ice not red at %d", i)
			}
		case ClassWater:
			if pg <= pr || pg <= pb {
				t.Fatalf("water not green at %d", i)
			}
		case ClassThinIce:
			if pb <= pr || pb <= pg {
				t.Fatalf("thin ice not blue at %d", i)
			}
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassWater.String() != "open-water" || ClassThinIce.String() != "thin-ice" || ClassThickIce.String() != "thick-ice" {
		t.Fatal("class names changed; reports depend on them")
	}
}

func TestFloatGrayRoundTrip(t *testing.T) {
	f := func(v uint8) bool {
		g := NewGray(1, 1)
		g.Pix[0] = v
		return FromGray(g).ToGray().Pix[0] == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSideBySide(t *testing.T) {
	a := randRGB(8, 4, 6)
	b := randRGB(9, 3, 6)
	p, err := SideBySide(a, b)
	if err != nil {
		t.Fatalf("panel: %v", err)
	}
	if p.W != 4+2+3 || p.H != 6 {
		t.Fatalf("panel size %dx%d", p.W, p.H)
	}
	if _, err := SideBySide(a, randRGB(10, 3, 5)); err == nil {
		t.Fatal("expected height-mismatch error")
	}
}
