package imgproc

import "seaice/internal/raster"

// Dilate grows foreground (nonzero) regions of a binary mask by a square
// structuring element of the given radius. Implemented as separable
// running-max passes, O(1) per pixel amortized via the two-stack max
// queue technique reduced to 8-bit scans.
func Dilate(src *raster.Gray, radius int) *raster.Gray {
	if radius <= 0 {
		return src.Clone()
	}
	tmp := slideExtreme(src, radius, true, true)
	return slideExtreme(tmp, radius, false, true)
}

// Erode shrinks foreground regions by a square structuring element.
func Erode(src *raster.Gray, radius int) *raster.Gray {
	if radius <= 0 {
		return src.Clone()
	}
	tmp := slideExtreme(src, radius, true, false)
	return slideExtreme(tmp, radius, false, false)
}

// Open erodes then dilates, removing specks smaller than the element.
func Open(src *raster.Gray, radius int) *raster.Gray {
	return Dilate(Erode(src, radius), radius)
}

// Close dilates then erodes, filling holes smaller than the element.
func Close(src *raster.Gray, radius int) *raster.Gray {
	return Erode(Dilate(src, radius), radius)
}

// slideExtreme computes the 1-D sliding max (or min) over rows or columns
// with window 2r+1 using the monotone deque algorithm.
func slideExtreme(src *raster.Gray, radius int, horizontal, max bool) *raster.Gray {
	w, h := src.W, src.H
	dst := raster.NewGray(w, h)

	better := func(a, b uint8) bool {
		if max {
			return a >= b
		}
		return a <= b
	}

	process := func(get func(i int) uint8, set func(i int, v uint8), n int) {
		// deque of indices with monotone values
		deque := make([]int, 0, n)
		for i := 0; i < n+radius; i++ {
			if i < n {
				v := get(i)
				for len(deque) > 0 && better(v, get(deque[len(deque)-1])) {
					deque = deque[:len(deque)-1]
				}
				deque = append(deque, i)
			}
			out := i - radius
			if out >= 0 {
				for len(deque) > 0 && deque[0] < out-radius {
					deque = deque[1:]
				}
				set(out, get(deque[0]))
			}
		}
	}

	if horizontal {
		for y := 0; y < h; y++ {
			row := src.Pix[y*w : (y+1)*w]
			out := dst.Pix[y*w : (y+1)*w]
			process(func(i int) uint8 { return row[i] }, func(i int, v uint8) { out[i] = v }, w)
		}
	} else {
		for x := 0; x < w; x++ {
			process(func(i int) uint8 { return src.Pix[i*w+x] }, func(i int, v uint8) { dst.Pix[i*w+x] = v }, h)
		}
	}
	return dst
}

// ConnectedComponents labels 4-connected foreground regions of a binary
// mask. It returns the per-pixel component id (0 = background) and the
// number of components found. Used to reason about cloud blobs and lead
// structures in the synthetic-data validation tests.
func ConnectedComponents(mask *raster.Gray) ([]int32, int) {
	w, h := mask.W, mask.H
	labels := make([]int32, w*h)
	next := int32(0)
	stack := make([]int32, 0, 1024)

	for start := 0; start < w*h; start++ {
		if mask.Pix[start] == 0 || labels[start] != 0 {
			continue
		}
		next++
		labels[start] = next
		stack = append(stack[:0], int32(start))
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x := int(p) % w
			y := int(p) / w
			try := func(nx, ny int) {
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					return
				}
				q := ny*w + nx
				if mask.Pix[q] != 0 && labels[q] == 0 {
					labels[q] = next
					stack = append(stack, int32(q))
				}
			}
			try(x-1, y)
			try(x+1, y)
			try(x, y-1)
			try(x, y+1)
		}
	}
	return labels, int(next)
}
