// Package pool provides the single-machine parallel substrate of the
// workflow — the Go analogue of the Python multiprocessing pool the paper
// uses to scale auto-labeling on a 4-core workstation (§III-B, Table I).
//
// Work items are distributed to a fixed set of worker goroutines over a
// channel; results are written to their original positions, so Map
// preserves order. Errors and panics in workers are captured and
// propagated to the caller rather than crashing the process, matching the
// robustness of a process pool.
//
// Parallelism/bit-identity guarantees: Map preserves item order
// regardless of which worker runs which item; MapRanges partitions
// [0, n) deterministically from (n, minGrain, pool size) alone, so
// kernels that accumulate within a stripe in serial order produce
// bit-identical results at any worker count — the property the tensor,
// autolabel, and pipeline engines are built on. Shared() is the one
// process-wide knob (seaice-train/seaice-pipeline -procs) sizing every
// kernel's fan-out.
package pool

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool runs tasks on a fixed number of workers.
type Pool struct {
	workers int
}

// New returns a pool with the given worker count; n <= 0 selects
// runtime.GOMAXPROCS(0), mirroring multiprocessing.Pool()'s default of
// os.cpu_count().
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Map applies fn to every index in [0, n) on the pool's workers and
// returns the first error encountered (remaining work is still drained).
// Panics inside fn are converted to errors. fn receives the item index;
// callers capture their input and output slices, which keeps this API
// free of reflection or generics gymnastics while preserving order.
func (p *Pool) Map(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.workers
	if workers > n {
		workers = n
	}

	idx := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var firstErr error
			for i := range idx {
				if firstErr != nil {
					continue // drain remaining work after a failure
				}
				firstErr = runTask(fn, i)
			}
			errs <- firstErr
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runTask invokes fn(i), converting panics into errors.
func runTask(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pool: task %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}

// MapRanges splits [0, n) into at most Workers() contiguous chunks of at
// least minGrain items each and applies fn to every chunk on the pool.
// Chunk boundaries depend only on n, minGrain, and the pool size, so
// callers that need deterministic work partitioning get it for free. When
// a single chunk results, fn runs inline on the calling goroutine.
func (p *Pool) MapRanges(n, minGrain int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if minGrain < 1 {
		minGrain = 1
	}
	chunks := p.workers
	if max := (n + minGrain - 1) / minGrain; chunks > max {
		chunks = max
	}
	if chunks <= 1 {
		return runRange(fn, 0, n)
	}
	return p.Map(chunks, func(i int) error {
		lo := i * n / chunks
		hi := (i + 1) * n / chunks
		return runRange(fn, lo, hi)
	})
}

// runRange invokes fn(lo, hi), converting panics into errors so inline
// execution matches Map's worker behavior.
func runRange(fn func(lo, hi int) error, lo, hi int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pool: range [%d,%d) panicked: %v", lo, hi, r)
		}
	}()
	return fn(lo, hi)
}

// MustMapRanges is MapRanges for callers whose fn cannot return an error:
// a non-nil result can only be a recovered worker panic, so it is
// re-panicked rather than silently dropped — a bug inside a stripe fails
// as loudly as it would on the serial path.
func (p *Pool) MustMapRanges(n, minGrain int, fn func(lo, hi int)) {
	err := p.MapRanges(n, minGrain, func(lo, hi int) error {
		fn(lo, hi)
		return nil
	})
	if err != nil {
		panic(err)
	}
}

// shared is the process-wide pool used by the compute kernels (tensor,
// nn, autolabel): one knob sizes the whole engine's parallelism.
var shared atomic.Pointer[Pool]

func init() { shared.Store(New(runtime.NumCPU())) }

// Shared returns the process-wide pool, sized from runtime.NumCPU unless
// overridden by SetSharedWorkers.
func Shared() *Pool { return shared.Load() }

// SetSharedWorkers resizes the shared pool; n <= 0 restores the
// runtime.NumCPU default. Safe to call concurrently with Shared, but the
// caller must ensure no kernel is mid-flight if determinism across the
// switch matters (partitioning depends on the pool size).
func SetSharedWorkers(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	shared.Store(New(n))
}

// serial is the canonical one-worker pool.
var serial = New(1)

// Serial returns a one-worker pool: kernels invoked with it run inline on
// the calling goroutine. Callers that provide their own concurrency —
// e.g. one inference session per serving worker — pass this to avoid
// nesting a fan-out inside an already-parallel context.
func Serial() *Pool { return serial }

// MapSlice is a generic convenience over Map: it applies fn to each input
// element and returns the outputs in input order.
func MapSlice[In, Out any](p *Pool, in []In, fn func(In) (Out, error)) ([]Out, error) {
	out := make([]Out, len(in))
	err := p.Map(len(in), func(i int) error {
		v, err := fn(in[i])
		if err != nil {
			return fmt.Errorf("pool: item %d: %w", i, err)
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
