package catalog

import (
	"testing"
	"time"
)

func mustCatalog(t *testing.T, cfg Config) *Catalog {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("catalog: %v", err)
	}
	return c
}

func smallConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.GridLat, cfg.GridLon = 2, 3
	cfg.Passes = 2
	cfg.SceneSize = 64
	return cfg
}

func TestDefaultArchiveMatchesPaperCampaign(t *testing.T) {
	c := mustCatalog(t, DefaultConfig(1))
	// 6×11 footprints per pass: the paper's 66 large scenes.
	nov := c.Find(Query{
		Region:   RossSea,
		From:     time.Date(2019, 11, 1, 0, 0, 0, 0, time.UTC),
		To:       time.Date(2019, 11, 6, 0, 0, 0, 0, time.UTC),
		MaxCloud: -1,
	})
	if len(nov) != 66 {
		t.Fatalf("one pass over the Ross Sea has %d scenes, want 66", len(nov))
	}
}

func TestQuerySpatialFilter(t *testing.T) {
	c := mustCatalog(t, smallConfig(2))
	all := c.Find(Query{Region: RossSea, MaxCloud: -1})
	if len(all) != 2*3*2 {
		t.Fatalf("archive has %d scenes, want 12", len(all))
	}
	// a region outside the archive
	none := c.Find(Query{Region: Region{LatMin: 10, LatMax: 20, LonMin: 0, LonMax: 10}, MaxCloud: -1})
	if len(none) != 0 {
		t.Fatalf("disjoint region matched %d scenes", len(none))
	}
	// a sliver intersecting only the south-west footprint
	corner := c.Find(Query{Region: Region{LatMin: -78, LatMax: -77.9, LonMin: -180, LonMax: -179.9}, MaxCloud: -1})
	if len(corner) != 2 { // one footprint × two passes
		t.Fatalf("corner sliver matched %d scenes, want 2", len(corner))
	}
}

func TestQueryTemporalFilter(t *testing.T) {
	cfg := smallConfig(3)
	c := mustCatalog(t, cfg)
	secondPass := cfg.Start.Add(cfg.Revisit)
	late := c.Find(Query{Region: RossSea, From: secondPass, MaxCloud: -1})
	if len(late) != 6 {
		t.Fatalf("second pass has %d scenes, want 6", len(late))
	}
	for _, d := range late {
		if d.Acquired.Before(secondPass) {
			t.Fatalf("scene %s acquired %v before the window", d.ID, d.Acquired)
		}
	}
}

func TestQueryCloudFilter(t *testing.T) {
	c := mustCatalog(t, smallConfig(4))
	clear := c.Find(Query{Region: RossSea, MaxCloud: 0})
	all := c.Find(Query{Region: RossSea, MaxCloud: -1})
	if len(clear) == 0 || len(clear) >= len(all) {
		t.Fatalf("cloud filter degenerate: %d clear of %d", len(clear), len(all))
	}
	for _, d := range clear {
		if d.CloudEstimate > 0 {
			t.Fatalf("scene %s advertised cloud %.2f above filter", d.ID, d.CloudEstimate)
		}
	}
}

func TestFetchDeterministicAndMatchesEstimate(t *testing.T) {
	c := mustCatalog(t, smallConfig(5))
	ds := c.Find(Query{Region: RossSea, MaxCloud: -1})
	a, err := c.Fetch(ds[0])
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	b, err := c.Fetch(ds[0])
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	for i := range a.Image.Pix {
		if a.Image.Pix[i] != b.Image.Pix[i] {
			t.Fatal("fetching the same scene twice gave different pixels")
		}
	}

	// advertised-clear scenes render clear; advertised-cloudy render cloudy
	for _, d := range ds {
		sc, err := c.Fetch(d)
		if err != nil {
			t.Fatalf("fetch %s: %v", d.ID, err)
		}
		if d.CloudEstimate == 0 && sc.CloudFraction != 0 {
			t.Fatalf("scene %s advertised clear but rendered %.2f cloudy", d.ID, sc.CloudFraction)
		}
	}
}

func TestFetchAllOrder(t *testing.T) {
	c := mustCatalog(t, smallConfig(6))
	ds := c.Find(Query{Region: RossSea, MaxCloud: -1})[:3]
	scenes, err := c.FetchAll(ds)
	if err != nil {
		t.Fatalf("fetchall: %v", err)
	}
	if len(scenes) != 3 {
		t.Fatalf("%d scenes", len(scenes))
	}
}

func TestRegionNormalizeAndIntersects(t *testing.T) {
	a := Region{LatMin: 5, LatMax: -5, LonMin: 10, LonMax: -10}.Normalize()
	if a.LatMin != -5 || a.LonMin != -10 {
		t.Fatalf("normalize wrong: %+v", a)
	}
	if !a.Intersects(Region{LatMin: 0, LatMax: 1, LonMin: 0, LonMax: 1}) {
		t.Fatal("containment not detected")
	}
	if a.Intersects(Region{LatMin: 50, LatMax: 60, LonMin: 0, LonMax: 1}) {
		t.Fatal("disjoint regions intersect")
	}
}

func TestNewValidation(t *testing.T) {
	bad := DefaultConfig(1)
	bad.GridLat = 0
	if _, err := New(bad); err == nil {
		t.Fatal("expected grid error")
	}
	bad = DefaultConfig(1)
	bad.SceneSize = 0
	if _, err := New(bad); err == nil {
		t.Fatal("expected size error")
	}
}
