package ring

import (
	"fmt"
	"sync"
)

// RankError reports a rank that failed during (or before) a collective
// operation — the ring's failure-detection signal. Callers (the ddp
// trainer) respond by healing the rank and retrying the step, or by
// continuing elastically over the survivors. For network transports the
// failed "rank" is the peer whose connection broke, and Err carries the
// underlying I/O error (nil for in-process membership failures).
type RankError struct {
	Rank int
	Err  error
}

func (e *RankError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("ring: rank %d failed: %v", e.Rank, e.Err)
	}
	return fmt.Sprintf("ring: rank %d failed", e.Rank)
}

// Unwrap exposes the underlying transport error, when any.
func (e *RankError) Unwrap() error { return e.Err }

// Group tracks ring membership across failures. The collective below
// (AllReduceMeanChunkedGroup) reduces over the live members only,
// rebuilding the ring — and re-deriving chunk geometry — from the
// survivor count; Fail marks a member dead (replica crash, injected or
// real) and Heal re-admits it after recovery.
//
// A collective snapshots the live set when it starts and re-checks it on
// completion, so a concurrent Fail surfaces as a *RankError — the
// analogue of a hardware ring timing out on a dead peer mid-transfer.
type Group struct {
	mu    sync.Mutex
	alive []bool
	live  int
}

// NewGroup returns a group of p fully-live ranks.
func NewGroup(p int) (*Group, error) {
	if p <= 0 {
		return nil, fmt.Errorf("ring: group size %d", p)
	}
	g := &Group{alive: make([]bool, p), live: p}
	for i := range g.alive {
		g.alive[i] = true
	}
	return g, nil
}

// Size returns the full membership count (live + dead).
func (g *Group) Size() int { return len(g.alive) }

// LiveCount returns the current number of live ranks.
func (g *Group) LiveCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.live
}

// IsLive reports rank r's membership.
func (g *Group) IsLive(r int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.alive[r]
}

// Live returns the live ranks in ascending order.
func (g *Group) Live() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]int, 0, g.live)
	for r, a := range g.alive {
		if a {
			out = append(out, r)
		}
	}
	return out
}

// Dead returns the failed ranks in ascending order.
func (g *Group) Dead() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]int, 0, len(g.alive)-g.live)
	for r, a := range g.alive {
		if !a {
			out = append(out, r)
		}
	}
	return out
}

// Fail marks rank r dead, so in-flight collectives detect the loss on
// completion. Idempotent.
func (g *Group) Fail(r int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if r < 0 || r >= len(g.alive) || !g.alive[r] {
		return
	}
	g.alive[r] = false
	g.live--
}

// Heal re-admits a recovered rank. Idempotent.
func (g *Group) Heal(r int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if r < 0 || r >= len(g.alive) || g.alive[r] {
		return
	}
	g.alive[r] = true
	g.live++
}

// snapshot returns the live set atomically.
func (g *Group) snapshot() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]int, 0, g.live)
	for r, a := range g.alive {
		if a {
			out = append(out, r)
		}
	}
	return out
}

// failedSince returns the lowest member of the collective's starting
// live set that has since died, or -1.
func (g *Group) failedSince(liveAtStart []int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range liveAtStart {
		if !g.alive[r] {
			return r
		}
	}
	return -1
}

// AllReduceMeanChunkedGroup averages the live ranks' vectors in place —
// the elastic all-reduce. The ring is rebuilt over the survivors at call
// time: dead ranks are excluded (their vectors untouched) and the chunk
// geometry is re-derived from the live count, so losing a rank changes
// the communication schedule but the math stays the deterministic mean
// over exactly the live inputs. vectors is indexed by original rank and
// must cover the full group.
//
// If a member fails while the reduce is in flight (Fail from another
// goroutine — the injected or real death of a replica mid-exchange), the
// operation completes its transfers but returns *RankError naming the
// lost rank, and the caller must treat the step as aborted: with a peer
// gone mid-ring the partial sums are not trustworthy, which is exactly
// the semantics of a hardware ring timing out.
func AllReduceMeanChunkedGroup[S Scalar](g *Group, vectors [][]S, chunk int) error {
	if g == nil {
		return AllReduceMeanChunked(vectors, chunk)
	}
	if len(vectors) != g.Size() {
		return fmt.Errorf("ring: %d vectors for group of %d", len(vectors), g.Size())
	}
	live := g.snapshot()
	if len(live) == 0 {
		return &RankError{Rank: 0}
	}
	views := make([][]S, len(live))
	for i, r := range live {
		views[i] = vectors[r]
	}
	if err := AllReduceMeanChunked(views, chunk); err != nil {
		return err
	}
	if r := g.failedSince(live); r >= 0 {
		return &RankError{Rank: r}
	}
	return nil
}

// BroadcastGroup copies the lowest live rank's vector to every other
// live rank — the membership-aware Broadcast for callers that
// re-synchronize flattened state over a degraded ring. (The ddp healer
// currently copies parameters directly via Model.CopyWeightsFrom; this
// collective is the substrate-level equivalent.)
func BroadcastGroup[S Scalar](g *Group, vectors [][]S) error {
	if g == nil {
		return Broadcast(vectors)
	}
	if len(vectors) != g.Size() {
		return fmt.Errorf("ring: %d vectors for group of %d", len(vectors), g.Size())
	}
	live := g.snapshot()
	if len(live) == 0 {
		return &RankError{Rank: 0}
	}
	views := make([][]S, len(live))
	for i, r := range live {
		views[i] = vectors[r]
	}
	return Broadcast(views)
}
